// Stability under sustained load: many exec/destroy cycles across every
// scheme must leave physical memory flat (no frame leaks), keep results
// identical, and keep the cache at steady state.
#include <gtest/gtest.h>

#include "src/baseline/dyn_codec.h"
#include "src/baseline/dynlib.h"
#include "src/core/server.h"
#include "src/support/strings.h"
#include "src/workloads/workloads.h"
#include "tests/helpers.h"

namespace omos {
namespace {

WorkloadParams TinyParams() {
  WorkloadParams params;
  params.libc_filler = 12;
  params.alpha_functions = 6;
  params.libm_functions = 4;
  params.libl_functions = 4;
  params.libcpp_functions = 4;
  params.codegen_files = 2;
  params.codegen_funcs_per_file = 4;
  return params;
}

TEST(Stress, RepeatedOmosExecsDoNotLeakFrames) {
  Kernel kernel;
  PopulateLsData(kernel.fs());
  OmosServer server(kernel);
  ASSERT_OK_AND_ASSIGN(Workloads w, BuildWorkloads(TinyParams()));
  ASSERT_OK(server.AddFragment("/lib/crt0.o", w.crt0));
  ASSERT_OK(server.AddFragment("/obj/ls.o", w.ls_obj));
  ASSERT_OK(server.AddArchive("/libc", w.libc));
  ASSERT_OK(server.DefineLibrary("/lib/libc", "(merge /libc)"));
  ASSERT_OK(server.DefineMeta("/bin/ls", "(merge /lib/crt0.o /obj/ls.o /lib/libc)"));

  std::string expected;
  uint64_t baseline_bytes = 0;
  for (int i = 0; i < 60; ++i) {
    bool integrated = i % 2 == 0;
    TaskId id = integrated
                    ? *server.IntegratedExec("/bin/ls", {"ls", "/data"})
                    : *server.BootstrapExec("/bin/ls", {"ls", "/data"});
    Task* task = kernel.FindTask(id);
    ASSERT_OK(kernel.RunTask(*task));
    EXPECT_EQ(task->exit_code(), 0);
    if (expected.empty()) {
      expected = task->output();
    } else {
      EXPECT_EQ(task->output(), expected) << "iteration " << i;
    }
    server.ReleaseTask(id);
    kernel.DestroyTask(id);
    if (i == 2) {
      baseline_bytes = kernel.phys().bytes_in_use();  // after warm-up
    }
    if (i > 2) {
      EXPECT_EQ(kernel.phys().bytes_in_use(), baseline_bytes) << "iteration " << i;
    }
  }
  // The cache reached steady state: two misses (program + library), the
  // rest hits.
  EXPECT_EQ(server.cache_stats().misses, 2u);
}

TEST(Stress, RepeatedBaselineExecsDoNotLeakFrames) {
  Kernel kernel;
  PopulateLsData(kernel.fs());
  Rtld rtld(kernel);
  DynLibBuilder builder;
  ASSERT_OK_AND_ASSIGN(Workloads w, BuildWorkloads(TinyParams()));
  ASSERT_OK_AND_ASSIGN(Module libc_m, ModuleFromArchive(w.libc));
  ASSERT_OK_AND_ASSIGN(DynImage libc, builder.BuildLibrary("libc", libc_m));
  ASSERT_OK(rtld.Install(std::move(libc)));
  ASSERT_OK_AND_ASSIGN(Module ls_m, ModuleFromObjects({w.crt0, w.ls_obj}));
  ASSERT_OK_AND_ASSIGN(DynImage ls, builder.BuildExecutable("ls", ls_m, {rtld.Find("libc")}));
  ASSERT_OK(rtld.Install(std::move(ls)));

  uint64_t baseline_bytes = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(TaskId id, rtld.Exec("ls", {"ls", "/data"}));
    Task* task = kernel.FindTask(id);
    ASSERT_OK(kernel.RunTask(*task));
    EXPECT_EQ(task->exit_code(), 0);
    rtld.ReleaseTask(id);
    kernel.DestroyTask(id);
    if (i == 1) {
      baseline_bytes = kernel.phys().bytes_in_use();
    }
    if (i > 1) {
      EXPECT_EQ(kernel.phys().bytes_in_use(), baseline_bytes) << "iteration " << i;
    }
  }
}

TEST(Stress, RepeatedDynamicLoadUnloadIsStable) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(R"(
.text
.global _start
_start:
  sys 0
)", "crt0.o"));
  ASSERT_OK(server.AddFragment("/lib/crt0.o", std::move(crt0)));
  ASSERT_OK_AND_ASSIGN(ObjectFile plugin, Assemble(R"(
.text
.global pf
pf:
  movi r0, 1
  ret
)", "p.o"));
  ASSERT_OK(server.AddFragment("/obj/p.o", std::move(plugin)));
  ASSERT_OK(server.DefineMeta("/bin/host", "(merge /lib/crt0.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server.IntegratedExec("/bin/host", {"host"}));
  Task* task = kernel.FindTask(id);

  size_t base_regions = task->space().Regions().size();
  uint64_t bytes_after_first = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(auto loaded, server.DynamicLoad(*task, "(merge /obj/p.o)", {"pf"}));
    ASSERT_OK(server.DynamicUnload(*task, loaded.text_base));
    EXPECT_EQ(task->space().Regions().size(), base_regions);
    if (i == 0) {
      bytes_after_first = kernel.phys().bytes_in_use();
    } else {
      EXPECT_EQ(kernel.phys().bytes_in_use(), bytes_after_first);
    }
  }
}

TEST(Stress, DynImageCodecRoundTripsWorkloadLibrary) {
  ASSERT_OK_AND_ASSIGN(Workloads w, BuildWorkloads(TinyParams()));
  DynLibBuilder builder;
  ASSERT_OK_AND_ASSIGN(Module libc_m, ModuleFromArchive(w.libc));
  ASSERT_OK_AND_ASSIGN(DynImage libc, builder.BuildLibrary("libc", libc_m));
  std::vector<uint8_t> bytes = EncodeDynImage(libc);
  ASSERT_TRUE(IsEncodedDynImage(bytes));
  ASSERT_OK_AND_ASSIGN(DynImage decoded, DecodeDynImage(bytes));
  EXPECT_EQ(decoded.name, libc.name);
  EXPECT_EQ(decoded.image.text, libc.image.text);
  EXPECT_EQ(decoded.image.data, libc.image.data);
  EXPECT_EQ(decoded.data_relocs.size(), libc.data_relocs.size());
  EXPECT_EQ(decoded.lazy_slots.size(), libc.lazy_slots.size());
  EXPECT_EQ(decoded.dispatch_bytes, libc.dispatch_bytes);

  // An installed decoded library behaves identically: exec a client against
  // it in a fresh kernel.
  Kernel kernel;
  PopulateLsData(kernel.fs());
  Rtld rtld(kernel);
  ASSERT_OK(rtld.Install(std::move(decoded)));
  ASSERT_OK_AND_ASSIGN(Module ls_m, ModuleFromObjects({w.crt0, w.ls_obj}));
  ASSERT_OK_AND_ASSIGN(DynImage ls, builder.BuildExecutable("ls", ls_m, {rtld.Find("libc")}));
  ASSERT_OK(rtld.Install(std::move(ls)));
  ASSERT_OK_AND_ASSIGN(TaskId id, rtld.Exec("ls", {"ls", "/data"}));
  Task* task = kernel.FindTask(id);
  ASSERT_OK(kernel.RunTask(*task));
  EXPECT_EQ(task->exit_code(), 0);
  EXPECT_EQ(task->output(), ExpectedLsShortOutput(kernel.fs(), "/data"));
  // Truncation rejected cleanly.
  bytes.resize(bytes.size() / 3);
  EXPECT_FALSE(DecodeDynImage(bytes).ok());
}

}  // namespace
}  // namespace omos
