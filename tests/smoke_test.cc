// End-to-end smoke tests: assemble -> link -> map -> execute.
#include <gtest/gtest.h>

#include "tests/helpers.h"

namespace omos {
namespace {

TEST(Smoke, ExitCode) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r0, 42
  sys 0
)"));
  EXPECT_EQ(out.exit_code, 42);
}

TEST(Smoke, HelloWorld) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r0, 1
  lea r1, msg
  movi r2, 14
  sys 1
  movi r0, 0
  sys 0
.data
msg: .asciiz "hello, world!\n"
)"));
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_EQ(out.output, "hello, world!\n");
}

TEST(Smoke, ArithmeticAndBranches) {
  Kernel kernel;
  // Sum 1..10 = 55.
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r1, 0
  movi r2, 1
  movi r3, 11
loop:
  add r1, r1, r2
  addi r2, r2, 1
  blt r2, r3, loop
  mov r0, r1
  sys 0
)"));
  EXPECT_EQ(out.exit_code, 55);
}

TEST(Smoke, CallsAndStack) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r0, 5
  call double_it
  call double_it
  sys 0
double_it:
  add r0, r0, r0
  ret
)"));
  EXPECT_EQ(out.exit_code, 20);
}

TEST(Smoke, CrossFragmentCall) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global _start
_start:
  movi r0, 3
  call triple
  sys 0
)", "main.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile lib_obj, Assemble(R"(
.text
.global triple
triple:
  movi r1, 3
  mul r0, r0, r1
  ret
)", "lib.o"));
  Module a = Module::FromObject(std::make_shared<const ObjectFile>(std::move(main_obj)));
  Module b = Module::FromObject(std::make_shared<const ObjectFile>(std::move(lib_obj)));
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(a, b));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(merged, layout, "prog"));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunImage(kernel, image));
  EXPECT_EQ(out.exit_code, 9);
}

TEST(Smoke, DataRelocationsAndMemory) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  lea r1, table      ; pointer table in data, abs relocs
  ld r2, [r1+0]      ; -> value_a
  ld r3, [r2+0]      ; 17
  ld r2, [r1+4]      ; -> value_b
  ld r1, [r2+0]      ; 25
  add r0, r3, r1
  sys 0
.data
.align 4
value_a: .word 17
value_b: .word 25
table: .word value_a, value_b
)"));
  EXPECT_EQ(out.exit_code, 42);
}

TEST(Smoke, BssAndByteOps) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  lea r1, buffer
  movi r2, 65
  stb r2, [r1+0]
  movi r2, 66
  stb r2, [r1+1]
  ldb r3, [r1+0]
  ldb r2, [r1+1]
  add r0, r3, r2     ; 65+66 = 131
  sys 0
.bss
buffer: .space 64
)"));
  EXPECT_EQ(out.exit_code, 131);
}

TEST(Smoke, ArgvPassing) {
  Kernel kernel;
  // Prints argv[1].
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  ld r4, [r1+4]     ; argv[1]
  mov r1, r4
  movi r0, 1
  movi r2, 3
  sys 1
  movi r0, 0
  sys 0
)", {"prog", "abc"}));
  EXPECT_EQ(out.output, "abc");
}

TEST(Smoke, FaultOnBadFetch) {
  Kernel kernel;
  auto result = AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r1, 0
  jmpr r1
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
}

TEST(Smoke, WriteToTextFaults) {
  Kernel kernel;
  auto result = AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  lea r1, _start
  movi r2, 0
  st r2, [r1+0]
  sys 0
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
}

}  // namespace
}  // namespace omos
