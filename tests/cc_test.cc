// Tests for the OC mini-C compiler: each program is compiled, assembled,
// linked and *executed*; correctness is judged by exit code / output.
#include <gtest/gtest.h>

#include "src/cc/compiler.h"
#include "tests/helpers.h"

namespace omos {
namespace {

constexpr char kRuntime[] = R"(
.text
.global _start
_start:
  call main
  sys 0
.global putnum
putnum:                 ; prints r0 in decimal followed by newline
  lea r1, npbuf_end
  movi r2, 10
pn_loop:
  mod r3, r0, r2
  addi r3, r3, 48
  addi r1, r1, -1
  stb r3, [r1+0]
  div r0, r0, r2
  movi r3, 0
  bne r0, r3, pn_loop
  lea r2, npbuf_end
  sub r2, r2, r1
  addi r2, r2, 1     ; include the trailing newline stored at npbuf_end
  movi r0, 1
  sys 1
  ret
.data
npbuf: .space 16
npbuf_end: .ascii "\n"
)";

// Compile `source`, link with the tiny runtime, run, return outcome.
Result<RunOutcome> CompileAndRun(const std::string& source,
                                 std::vector<std::string> args = {}) {
  OMOS_TRY(std::string asm_text, CompileC(source));
  OMOS_TRY(ObjectFile program, Assemble(asm_text, "prog.o"));
  OMOS_TRY(ObjectFile runtime, Assemble(kRuntime, "rt.o"));
  Module a = Module::FromObject(std::make_shared<const ObjectFile>(std::move(runtime)));
  Module b = Module::FromObject(std::make_shared<const ObjectFile>(std::move(program)));
  OMOS_TRY(Module merged, Module::Merge(a, b));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  OMOS_TRY(LinkedImage image, LinkImage(merged, layout, "prog"));
  Kernel kernel;
  return RunImage(kernel, image, std::move(args));
}

int ExitOf(const std::string& source) {
  auto result = CompileAndRun(source);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().ToString());
  return result.ok() ? result->exit_code : -999;
}

TEST(MiniC, ReturnConstant) {
  EXPECT_EQ(ExitOf("int main(int argc, int argv) { return 42; }"), 42);
}

TEST(MiniC, Arithmetic) {
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 2 + 3 * 4 - 6 / 2; }"), 11);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 17 % 5; }"), 2);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return -(5 - 8); }"), 3);
}

TEST(MiniC, Comparisons) {
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 3 < 4; }"), 1);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 4 < 3; }"), 0);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 4 <= 4; }"), 1);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 5 > 4; }"), 1);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 4 >= 5; }"), 0);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 7 == 7; }"), 1);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 7 != 7; }"), 0);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 0 - 3 < 2; }"), 1);  // signed compare
}

TEST(MiniC, LogicalAndBitwise) {
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 1 && 2; }"), 1);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 1 && 0; }"), 0);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 0 || 3; }"), 1);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return !5; }"), 0);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return !0; }"), 1);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 12 & 10; }"), 8);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 12 | 10; }"), 14);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 12 ^ 10; }"), 6);
}

TEST(MiniC, LocalsAndAssignment) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int x = 10;
  int y;
  y = x * 2;
  x = y + x;
  return x;
})"), 30);
}

TEST(MiniC, IfElseChains) {
  const char* prog = R"(
int classify(int n) {
  if (n < 0) { return 1; }
  else if (n == 0) { return 2; }
  else { return 3; }
}
int main(int a, int b) {
  return classify(0 - 5) * 100 + classify(0) * 10 + classify(9);
})";
  EXPECT_EQ(ExitOf(prog), 123);
}

TEST(MiniC, WhileLoopSum) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int total = 0;
  int i = 1;
  while (i <= 10) {
    total = total + i;
    i = i + 1;
  }
  return total;
})"), 55);
}

TEST(MiniC, RecursionFactorial) {
  EXPECT_EQ(ExitOf(R"(
int fact(int n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
int main(int a, int b) { return fact(5); })"), 120);
}

TEST(MiniC, RecursionFibonacci) {
  EXPECT_EQ(ExitOf(R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main(int a, int b) { return fib(10); })"), 55);
}

TEST(MiniC, FourParameters) {
  EXPECT_EQ(ExitOf(R"(
int weigh(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
int main(int x, int y) { return weigh(1, 2, 3, 4) % 256; })"), 1234 % 256);
}

TEST(MiniC, GlobalsAndArrays) {
  EXPECT_EQ(ExitOf(R"(
int counter = 5;
int grid[10];
int main(int a, int b) {
  counter = counter + 1;
  int i = 0;
  while (i < 10) {
    grid[i] = i * i;
    i = i + 1;
  }
  return grid[7] + counter;
})"), 49 + 6);
}

TEST(MiniC, LocalArrays) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int v[4];
  v[0] = 3;
  v[1] = v[0] * 2;
  v[2] = v[1] * 2;
  v[3] = v[2] * 2;
  return v[0] + v[1] + v[2] + v[3];
})"), 45);
}

TEST(MiniC, PointersAndAddressOf) {
  EXPECT_EQ(ExitOf(R"(
int g = 7;
int main(int a, int b) {
  int local = 3;
  int p = &g;
  *p = *p + 1;
  int q = &local;
  *q = *q * 10;
  return g + local;
})"), 8 + 30);
}

TEST(MiniC, StringLiteralsAndOutput) {
  auto result = CompileAndRun(R"(
int main(int argc, int argv) {
  putnum(7 * 6);
  return 0;
})");
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->output, "42\n");
}

TEST(MiniC, CharLiterals) {
  EXPECT_EQ(ExitOf("int main(int a, int b) { return 'A' + 1; }"), 66);
  EXPECT_EQ(ExitOf("int main(int a, int b) { return '\\n'; }"), 10);
}

TEST(MiniC, CommentsBothStyles) {
  EXPECT_EQ(ExitOf(R"(
// line comment
int main(int a, int b) {
  /* block
     comment */
  return 9; // trailing
})"), 9);
}

TEST(MiniC, MutualRecursion) {
  // No prototypes needed: calls to not-yet-defined functions simply emit
  // unresolved references that the linker closes.
  EXPECT_EQ(ExitOf(R"(
int is_even(int n) {
  if (n == 0) { return 1; }
  return is_odd(n - 1);
}
int is_odd(int n) {
  if (n == 0) { return 0; }
  return is_even(n - 1);
}
int main(int a, int b) { return is_even(10) * 10 + is_odd(10); })"), 10);
}

TEST(MiniC, ErrorsAreParseErrors) {
  auto bad = CompileC("int main( { return 1; }");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kParseError);

  auto too_many = CompileC("int f(int a, int b, int c, int d, int e) { return 0; }");
  ASSERT_FALSE(too_many.ok());

  auto unterminated = CompileC("int main(int a, int b) { return 1;");
  ASSERT_FALSE(unterminated.ok());
}

TEST(MiniC, FallOffEndReturnsZero) {
  EXPECT_EQ(ExitOf("int main(int a, int b) { int x = 5; x = x + 1; }"), 0);
}


TEST(MiniC, ForLoop) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int total = 0;
  for (int i = 1; i <= 10; i = i + 1) {
    total = total + i;
  }
  return total;
})"), 55);
}

TEST(MiniC, ForLoopEmptyClauses) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int i = 0;
  for (;;) {
    i = i + 1;
    if (i == 7) { break; }
  }
  return i;
})"), 7);
}

TEST(MiniC, BreakAndContinue) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int total = 0;
  for (int i = 0; i < 20; i = i + 1) {
    if (i % 2 == 0) { continue; }   // skip evens
    if (i > 9) { break; }
    total = total + i;              // 1+3+5+7+9
  }
  return total;
})"), 25);
}

TEST(MiniC, NestedLoopsWithBreak) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int hits = 0;
  for (int i = 0; i < 5; i = i + 1) {
    int j = 0;
    while (j < 5) {
      j = j + 1;
      if (j == 3) { break; }        // inner break only
      hits = hits + 1;
    }
  }
  return hits;
})"), 10);
}

TEST(MiniC, ContinueInWhile) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int i = 0;
  int total = 0;
  while (i < 10) {
    i = i + 1;
    if (i % 3 != 0) { continue; }
    total = total + i;              // 3+6+9
  }
  return total;
})"), 18);
}

TEST(MiniC, BreakOutsideLoopRejected) {
  auto result = CompileC("int main(int a, int b) { break; return 0; }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("break outside loop"), std::string::npos);
}


TEST(MiniC, ShortCircuitEvaluation) {
  // The right side must not run when the left side decides: the guard keeps
  // the division-by-zero (which would fault the machine) from executing.
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int zero = 0;
  int safe1 = 0;
  int safe2 = 0;
  if (zero != 0 && 10 / zero > 0) { safe1 = 100; }
  if (zero == 0 || 10 / zero > 0) { safe2 = 1; }
  return safe1 + safe2;
})"), 1);
}

TEST(MiniC, ShortCircuitSkipsCalls) {
  EXPECT_EQ(ExitOf(R"(
int calls = 0;
int bump(int v) {
  calls = calls + 1;
  return v;
}
int main(int a, int b) {
  int r = bump(0) && bump(1);   // second bump skipped
  r = r + (bump(1) || bump(1)); // second bump skipped
  return calls * 10 + r;        // 2 calls, r = 0 + 1
})"), 21);
}


TEST(MiniC, NestedCallsAsArguments) {
  EXPECT_EQ(ExitOf(R"(
int add(int a, int b) { return a + b; }
int twice(int x) { return x * 2; }
int main(int a, int b) { return add(twice(3), add(twice(2), 1)); })"), 11);
}

TEST(MiniC, DeepRecursionUsesRealStack) {
  EXPECT_EQ(ExitOf(R"(
int depth(int n) {
  if (n == 0) { return 0; }
  return 1 + depth(n - 1);
}
int main(int a, int b) { return depth(200); })"), 200);
}

TEST(MiniC, GlobalArrayAcrossFunctions) {
  EXPECT_EQ(ExitOf(R"(
int tab[8];
int fill(int n) {
  for (int i = 0; i < n; i = i + 1) { tab[i] = i * 3; }
  return 0;
}
int sum(int n) {
  int total = 0;
  for (int i = 0; i < n; i = i + 1) { total = total + tab[i]; }
  return total;
}
int main(int a, int b) {
  fill(8);
  return sum(8);      // 3*(0+..+7) = 84
})"), 84);
}

TEST(MiniC, PointerPassedToFunction) {
  EXPECT_EQ(ExitOf(R"(
int set_to(int p, int v) { *p = v; return 0; }
int main(int a, int b) {
  int x = 1;
  set_to(&x, 55);
  return x;
})"), 55);
}

TEST(MiniC, ComplexConditions) {
  EXPECT_EQ(ExitOf(R"(
int main(int a, int b) {
  int count = 0;
  for (int i = 0; i < 30; i = i + 1) {
    if ((i % 3 == 0 && i % 5 == 0) || i == 1) { count = count + 1; }
  }
  return count;       // i = 0, 15 (fizzbuzz) and i = 1
})"), 3);
}

}  // namespace
}  // namespace omos
