// Unit tests for the mini-OS: SimFs, syscalls, cost accounting, stack/argv.
#include <gtest/gtest.h>

#include "src/os/kernel.h"
#include "src/support/strings.h"
#include "src/os/sim_fs.h"
#include "tests/helpers.h"

namespace omos {
namespace {

TEST(SimFs, WriteAndLookup) {
  SimFs fs;
  fs.WriteFile("/etc/motd", "hello");
  ASSERT_TRUE(fs.Exists("/etc/motd"));
  ASSERT_OK_AND_ASSIGN(const SimFile* file, fs.Lookup("/etc/motd"));
  EXPECT_EQ(file->bytes.size(), 5u);
  EXPECT_NE(file->mode & kModeFile, 0u);
  // Parent directory implicitly created.
  ASSERT_OK_AND_ASSIGN(const SimFile* dir, fs.Lookup("/etc"));
  EXPECT_NE(dir->mode & kModeDir, 0u);
}

TEST(SimFs, PathNormalization) {
  SimFs fs;
  fs.WriteFile("//a///b/./c", "x");
  EXPECT_TRUE(fs.Exists("/a/b/c"));
  ASSERT_OK(fs.Lookup("/a/b/c/"));
}

TEST(SimFs, ListDirSortedImmediateChildren) {
  SimFs fs;
  fs.WriteFile("/d/zebra", "1");
  fs.WriteFile("/d/apple", "2");
  fs.WriteFile("/d/sub/nested", "3");
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> names, fs.ListDir("/d"));
  EXPECT_EQ(names, (std::vector<std::string>{"apple", "sub", "zebra"}));
}

TEST(SimFs, ListDirErrors) {
  SimFs fs;
  fs.WriteFile("/f", "x");
  EXPECT_FALSE(fs.ListDir("/missing").ok());
  EXPECT_FALSE(fs.ListDir("/f").ok());
}

TEST(SimFs, RewriteKeepsInode) {
  SimFs fs;
  fs.WriteFile("/f", "one");
  uint32_t inode = (*fs.Lookup("/f"))->inode;
  fs.WriteFile("/f", "two");
  EXPECT_EQ((*fs.Lookup("/f"))->inode, inode);
  EXPECT_EQ((*fs.Lookup("/f"))->bytes.size(), 3u);
}

TEST(Syscalls, OpenReadClose) {
  Kernel kernel;
  kernel.fs().WriteFile("/greeting", "hello, world");
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  lea r0, path
  sys 3              ; open -> fd
  mov r4, r0
  lea r1, buf
  movi r2, 64
  sys 2              ; read -> n
  mov r5, r0
  movi r0, 1
  lea r1, buf
  mov r2, r5
  sys 1              ; write what we read
  mov r0, r4
  sys 4              ; close
  movi r0, 0
  sys 0
.data
path: .asciiz "/greeting"
.bss
buf: .space 64
)"));
  EXPECT_EQ(out.output, "hello, world");
}

TEST(Syscalls, OpenMissingFileReturnsMinusOne) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  lea r0, path
  sys 3
  sys 0              ; exit(fd)
.data
path: .asciiz "/nope"
)"));
  EXPECT_EQ(out.exit_code, -1);
}

TEST(Syscalls, StatFillsBuffer) {
  Kernel kernel;
  kernel.fs().WriteFile("/f", "12345");
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  lea r0, path
  lea r1, statbuf
  sys 7
  lea r1, statbuf
  ld r0, [r1+0]      ; size
  sys 0
.data
path: .asciiz "/f"
.bss
statbuf: .space 16
)"));
  EXPECT_EQ(out.exit_code, 5);
}

TEST(Syscalls, GetdentsPagination) {
  Kernel kernel;
  for (int i = 0; i < 5; ++i) {
    kernel.fs().WriteFile(StrCat("/dir/f", i), "x");
  }
  // Buffer holds 2 dirents; count total records over repeated calls.
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  lea r0, path
  sys 3
  mov r4, r0         ; fd
  movi r5, 0         ; record count
again:
  mov r0, r4
  lea r1, buf
  movi r2, 128       ; room for 2 records
  sys 6
  movi r1, 0
  beq r0, r1, done
  movi r1, 64
  div r0, r0, r1
  add r5, r5, r0
  br again
done:
  mov r0, r5
  sys 0
.data
path: .asciiz "/dir"
.bss
buf: .space 128
)"));
  EXPECT_EQ(out.exit_code, 5);
}

TEST(Syscalls, BrkGrowsHeap) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r0, 0
  sys 5              ; query brk
  mov r4, r0
  addi r0, r4, 8192
  sys 5              ; grow
  st r4, [r4+0]      ; touch new heap memory
  ld r1, [r4+0]
  sub r0, r1, r4     ; 0 if round-trip worked
  sys 0
)"));
  EXPECT_EQ(out.exit_code, 0);
}

TEST(Syscalls, TimeReturnsElapsed) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  sys 8
  sys 0
)"));
  EXPECT_GE(out.exit_code, 0);
}

TEST(Syscalls, UnknownSyscallFaults) {
  Kernel kernel;
  auto result = AssembleAndRun(kernel, ".text\n.global _start\n_start:\n  sys 99\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
}

TEST(Kernel, CostAccountingChargesSyscalls) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome quiet, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r0, 0
  sys 0
)"));
  Kernel kernel2;
  ASSERT_OK_AND_ASSIGN(RunOutcome chatty, AssembleAndRun(kernel2, R"(
.text
.global _start
_start:
  movi r4, 0
loop:
  movi r0, 1
  lea r1, c
  movi r2, 1
  sys 1
  addi r4, r4, 1
  movi r1, 10
  blt r4, r1, loop
  movi r0, 0
  sys 0
.data
c: .ascii "x"
)"));
  EXPECT_GT(chatty.sys_cycles, quiet.sys_cycles + 10 * kernel2.costs().syscall_overhead - 1);
}

TEST(Kernel, InstructionBudgetKillsRunaway) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.text
.global _start
_start:
  br _start
)", "spin.o"));
  Module m = Module::FromObject(std::make_shared<const ObjectFile>(std::move(object)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "spin"));
  Task& task = kernel.CreateTask("spin");
  ASSERT_OK(MapLinkedImage(kernel, task, image, ""));
  ASSERT_OK(StartTask(kernel, task, image.entry, {}));
  auto result = kernel.RunTask(task, 1000);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("budget"), std::string::npos);
}

TEST(Kernel, PageCacheSharesText) {
  Kernel kernel;
  std::vector<uint8_t> text(kPageSize, 0x11);
  ASSERT_OK_AND_ASSIGN(const SegmentImage* a, kernel.PageCachePut("k", text));
  EXPECT_EQ(kernel.PageCacheGet("k"), a);
  EXPECT_EQ(kernel.PageCacheGet("other"), nullptr);
}

TEST(Kernel, ArgvConventions) {
  Kernel kernel;
  // exit(argc) with argv strings readable.
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  sys 0
)", {"prog", "a", "bc"}));
  EXPECT_EQ(out.exit_code, 3);
}

}  // namespace
}  // namespace omos
