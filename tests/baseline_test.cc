// Traditional shared-library baseline: PLT/GOT lazy binding, per-exec
// relocation work, text sharing; plus the static-link baseline.
#include <gtest/gtest.h>

#include "src/baseline/dynlib.h"
#include "src/baseline/static_linker.h"
#include "tests/helpers.h"

namespace omos {
namespace {

constexpr char kCrt0[] = R"(
.text
.global _start
_start:
  call main
  sys 0
)";

constexpr char kLibSource[] = R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
.global mul3
mul3:
  push lr
  movi r1, 3
  mul r0, r0, r1
  call add2      ; intra-library call: routed through the linkage table
  pop lr
  ret
.global get_answer
get_answer:
  lea r1, answer
  ld r0, [r1+0]
  ret
.data
.align 4
answer: .word 40
answer_ptr: .word answer   ; data relocation -> per-exec rtld work
)";

constexpr char kClient[] = R"(
.text
.global main
main:
  push lr
  movi r0, 5
  call mul3        ; (5*3)+2 = 17
  call add2        ; 19
  push r4
  mov r4, r0
  call get_answer  ; 40
  add r0, r0, r4   ; 59
  pop r4
  pop lr
  ret
)";

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rtld_ = std::make_unique<Rtld>(kernel_);
    ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(kCrt0, "crt0.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(kLibSource, "lib.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile client, Assemble(kClient, "client.o"));
    lib_module_ = Module::FromObject(std::make_shared<const ObjectFile>(std::move(lib)));
    Module crt0_m = Module::FromObject(std::make_shared<const ObjectFile>(std::move(crt0)));
    Module client_m = Module::FromObject(std::make_shared<const ObjectFile>(std::move(client)));
    ASSERT_OK_AND_ASSIGN(client_module_, Module::Merge(crt0_m, client_m));
  }

  Result<RunOutcome> ExecAndRun(const std::string& name, std::vector<std::string> args) {
    OMOS_TRY(TaskId id, rtld_->Exec(name, std::move(args)));
    Task* task = kernel_.FindTask(id);
    OMOS_TRY_VOID(kernel_.RunTask(*task));
    RunOutcome out;
    out.exit_code = task->exit_code();
    out.output = task->output();
    out.user_cycles = task->user_cycles();
    out.sys_cycles = task->sys_cycles();
    return out;
  }

  Kernel kernel_;
  DynLibBuilder builder_;
  std::unique_ptr<Rtld> rtld_;
  Module lib_module_;
  Module client_module_;
};

TEST_F(BaselineTest, DynamicExecProducesCorrectResult) {
  ASSERT_OK_AND_ASSIGN(DynImage lib, builder_.BuildLibrary("libtest", lib_module_));
  EXPECT_FALSE(lib.lazy_slots.empty());
  EXPECT_FALSE(lib.data_relocs.empty());  // answer_ptr at minimum
  ASSERT_OK(rtld_->Install(std::move(lib)));
  const DynImage* installed = rtld_->Find("libtest");
  ASSERT_NE(installed, nullptr);
  ASSERT_OK_AND_ASSIGN(DynImage prog,
                       builder_.BuildExecutable("prog", client_module_, {installed}));
  ASSERT_OK(rtld_->Install(std::move(prog)));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, ExecAndRun("prog", {"prog"}));
  EXPECT_EQ(out.exit_code, 59);
  EXPECT_GT(rtld_->lazy_resolutions(), 0u);
}

TEST_F(BaselineTest, LazyBindingResolvesOncePerSlotPerTask) {
  ASSERT_OK_AND_ASSIGN(DynImage lib, builder_.BuildLibrary("libtest", lib_module_));
  ASSERT_OK(rtld_->Install(std::move(lib)));
  ASSERT_OK_AND_ASSIGN(DynImage prog, builder_.BuildExecutable("prog", client_module_,
                                                               {rtld_->Find("libtest")}));
  ASSERT_OK(rtld_->Install(std::move(prog)));
  ASSERT_OK_AND_ASSIGN(RunOutcome first, ExecAndRun("prog", {"prog"}));
  uint64_t after_first = rtld_->lazy_resolutions();
  ASSERT_OK_AND_ASSIGN(RunOutcome second, ExecAndRun("prog", {"prog"}));
  uint64_t after_second = rtld_->lazy_resolutions();
  EXPECT_EQ(first.exit_code, second.exit_code);
  // Fresh task, fresh GOT: the same lazy work repeats per invocation.
  EXPECT_EQ(after_second - after_first, after_first);
}

TEST_F(BaselineTest, TextSharedDataPrivate) {
  ASSERT_OK_AND_ASSIGN(DynImage lib, builder_.BuildLibrary("libtest", lib_module_));
  ASSERT_OK(rtld_->Install(std::move(lib)));
  ASSERT_OK_AND_ASSIGN(DynImage prog, builder_.BuildExecutable("prog", client_module_,
                                                               {rtld_->Find("libtest")}));
  ASSERT_OK(rtld_->Install(std::move(prog)));
  ASSERT_OK_AND_ASSIGN(TaskId id1, rtld_->Exec("prog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(TaskId id2, rtld_->Exec("prog", {"prog"}));
  Task* t1 = kernel_.FindTask(id1);
  Task* t2 = kernel_.FindTask(id2);
  EXPECT_GT(t1->space().shared_pages(), 0u);
  EXPECT_GT(t2->space().shared_pages(), 0u);
  EXPECT_GT(t1->space().private_pages(), 0u);
  ASSERT_OK(kernel_.RunTask(*t1));
  ASSERT_OK(kernel_.RunTask(*t2));
  EXPECT_EQ(t1->exit_code(), 59);
  EXPECT_EQ(t2->exit_code(), 59);
}

TEST_F(BaselineTest, DispatchBytesAccounted) {
  ASSERT_OK_AND_ASSIGN(DynImage lib, builder_.BuildLibrary("libtest", lib_module_));
  EXPECT_GT(lib.dispatch_bytes, 0u);
  ASSERT_OK(rtld_->Install(std::move(lib)));
  EXPECT_EQ(rtld_->TotalDispatchBytes(), rtld_->Find("libtest")->dispatch_bytes);
}

TEST_F(BaselineTest, StaticLinkAndExec) {
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(client_module_, lib_module_));
  ASSERT_OK_AND_ASSIGN(StaticExecutable exe, StaticLink("prog", merged, kernel_.costs()));
  EXPECT_GT(exe.link_cost, 0u);
  ASSERT_OK_AND_ASSIGN(TaskId id, StaticExec(kernel_, exe, {"prog"}));
  Task* task = kernel_.FindTask(id);
  ASSERT_OK(kernel_.RunTask(*task));
  EXPECT_EQ(task->exit_code(), 59);
}

TEST_F(BaselineTest, MissingLibraryFailsExec) {
  ASSERT_OK_AND_ASSIGN(DynImage lib, builder_.BuildLibrary("libtest", lib_module_));
  ASSERT_OK_AND_ASSIGN(DynImage prog, builder_.BuildExecutable("prog", client_module_, {&lib}));
  // Library never installed.
  ASSERT_OK(rtld_->Install(std::move(prog)));
  auto result = rtld_->Exec("prog", {"prog"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace omos
