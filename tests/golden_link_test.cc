// Byte-identity goldens for the link path.
//
// The interned-symbol/flat-table resolution path must produce exactly the
// LinkedImage (text, data, symbols, entry) the original string-keyed linker
// produced. Each scenario links a workload-suite module and folds the full
// image — section bytes, layout, exported symbols in order, unresolved list —
// into one fingerprint. The constants below were captured from the
// pre-refactor seed linker; a mismatch means the link output changed, which
// is an output-compatibility break, not a perf regression.
//
// To regenerate after an *intentional* output change, run with
// OMOS_PRINT_GOLDEN=1 and paste the printed values.
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/linker/link.h"
#include "src/support/strings.h"
#include "src/vasm/assembler.h"
#include "src/workloads/workloads.h"
#include "tests/helpers.h"

namespace omos {
namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

// Everything observable about a linked image, order-sensitive.
uint64_t Fingerprint(const LinkedImage& image) {
  uint64_t h = Fnv1aBytes(image.text.data(), image.text.size());
  h = Mix(h, Fnv1aBytes(image.data.data(), image.data.size()));
  h = Mix(h, image.text_base);
  h = Mix(h, image.data_base);
  h = Mix(h, image.bss_size);
  h = Mix(h, image.entry);
  for (const ImageSymbol& sym : image.symbols) {
    h = Mix(h, Fnv1a(sym.name));
    h = Mix(h, sym.addr);
    h = Mix(h, sym.size);
    h = Mix(h, static_cast<uint64_t>(sym.section));
  }
  for (const std::string& name : image.unresolved) {
    h = Mix(h, Fnv1a(name));
  }
  return h;
}

const Workloads& W() {
  static const Workloads* workloads = [] {
    auto result = BuildWorkloads();
    if (!result.ok()) {
      ADD_FAILURE() << "BuildWorkloads: " << result.error().ToString();
      std::abort();
    }
    return new Workloads(std::move(result).value());
  }();
  return *workloads;
}

void CheckGolden(const char* name, const LinkedImage& image, uint64_t want) {
  uint64_t got = Fingerprint(image);
  if (std::getenv("OMOS_PRINT_GOLDEN") != nullptr) {
    std::printf("GOLDEN %-16s 0x%016llxull\n", name, static_cast<unsigned long long>(got));
    return;
  }
  EXPECT_EQ(got, want) << name << ": linked image no longer byte-identical to the seed output";
}

// ls: crt0 + program object + libc, the paper's small-utility shape.
TEST(GoldenLink, LsStatic) {
  ASSERT_OK_AND_ASSIGN(Module prog, ModuleFromObjects({W().crt0, W().ls_obj}));
  ASSERT_OK_AND_ASSIGN(Module libc, ModuleFromArchive(W().libc));
  ASSERT_OK_AND_ASSIGN(prog, Module::Merge(prog, libc));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(prog, layout, "ls"));
  CheckGolden("ls-static", image, 0x25eb0de1e2baca67ull);
}

// codegen: the large program linking six mostly-unused libraries.
TEST(GoldenLink, CodegenStatic) {
  std::vector<ObjectFile> objs = W().codegen_objs;
  objs.insert(objs.begin(), W().crt0);
  ASSERT_OK_AND_ASSIGN(Module prog, ModuleFromObjects(objs));
  for (const Archive* lib :
       {&W().libc, &W().alpha1, &W().alpha2, &W().libm, &W().libl, &W().libcpp}) {
    ASSERT_OK_AND_ASSIGN(Module m, ModuleFromArchive(*lib));
    ASSERT_OK_AND_ASSIGN(prog, Module::Merge(prog, m));
  }
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(prog, layout, "codegen"));
  CheckGolden("codegen-static", image, 0x2e84c0ac9846bf5eull);
}

// View-op chain over libc: rename/copy-as/hide/show/freeze/restrict must
// materialize identically through the precompiled-pattern path.
TEST(GoldenLink, ViewOps) {
  ASSERT_OK_AND_ASSIGN(Module libc, ModuleFromArchive(W().libc));
  Module viewed = libc.CopyAs("^str", "dup_&")
                      .Rename("^malloc$", "omos_malloc", RenameWhich::kBoth)
                      .Hide("^f_time$")
                      .Freeze("^print_")
                      .Restrict("^peek8$");
  LayoutSpec layout;
  layout.allow_unresolved = true;
  layout.text_base = 0x00400000;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(viewed, layout, "libc-viewed"));
  CheckGolden("libc-views", image, 0x76a6a4b50959b515ull);
}

// show/project keep only a matching slice of the namespace.
TEST(GoldenLink, ProjectShow) {
  ASSERT_OK_AND_ASSIGN(Module libc, ModuleFromArchive(W().libc));
  Module sliced = libc.Show("^(str|mem|malloc|free|print_)").Project("^(str|malloc)");
  LayoutSpec layout;
  layout.allow_unresolved = true;
  layout.text_base = 0x00400000;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(sliced, layout, "libc-sliced"));
  CheckGolden("libc-slice", image, 0x7452024b075b02f4ull);
}

// Interposition via override: the wrapper takes over the name, non-frozen
// internal callers rebind to it (the paper's Fig. 2 shape).
TEST(GoldenLink, OverrideInterpose) {
  ASSERT_OK_AND_ASSIGN(Module libc, ModuleFromArchive(W().libc));
  Module renamed = libc.CopyAs("^malloc$", "real_malloc").Restrict("^malloc$");
  ASSERT_OK_AND_ASSIGN(ObjectFile wrapper, Assemble(R"(
.text
.global malloc
malloc:
  push lr
  call real_malloc
  pop lr
  ret
)",
                                                    "wrapper.o"));
  ASSERT_OK_AND_ASSIGN(
      Module merged,
      Module::Override(renamed,
                       Module::FromObject(std::make_shared<const ObjectFile>(std::move(wrapper)))));
  LayoutSpec layout;
  layout.allow_unresolved = true;
  layout.text_base = 0x00400000;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(merged, layout, "libc-interposed"));
  CheckGolden("interpose", image, 0xa31bd4ceaf80ade8ull);
}

}  // namespace
}  // namespace omos
