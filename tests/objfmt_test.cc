// Unit tests for src/objfmt: object model, codecs (parameterized over both
// backends), format sniffing, archives, validation.
#include <gtest/gtest.h>

#include "src/objfmt/archive.h"
#include "src/objfmt/backend.h"
#include "src/objfmt/bytes.h"
#include "tests/helpers.h"

namespace omos {
namespace {

ObjectFile SampleObject() {
  ObjectFile object("sample.o");
  object.section(SectionKind::kText).bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  object.section(SectionKind::kData).bytes = {0xde, 0xad, 0xbe, 0xef};
  object.section(SectionKind::kBss).bss_size = 64;
  EXPECT_OK(object.DefineSymbol("entry", SymbolBinding::kGlobal, SectionKind::kText, 0, 8));
  EXPECT_OK(object.DefineSymbol("datum", SymbolBinding::kWeak, SectionKind::kData, 0, 4));
  EXPECT_OK(object.DefineSymbol("local_helper", SymbolBinding::kLocal, SectionKind::kText, 8));
  object.ReferenceSymbol("external_fn");
  object.AddReloc(SectionKind::kText, Relocation{4, RelocKind::kAbs32, "external_fn", 0});
  object.AddReloc(SectionKind::kData, Relocation{0, RelocKind::kAbs32, "datum", 2});
  EXPECT_OK(object.Validate());
  return object;
}

TEST(ObjectFile, SymbolLookup) {
  ObjectFile object = SampleObject();
  ASSERT_NE(object.FindSymbol("entry"), nullptr);
  EXPECT_TRUE(object.FindSymbol("entry")->defined);
  ASSERT_NE(object.FindSymbol("external_fn"), nullptr);
  EXPECT_FALSE(object.FindSymbol("external_fn")->defined);
  EXPECT_EQ(object.FindSymbol("missing"), nullptr);
}

TEST(ObjectFile, DefinitionsAndReferences) {
  ObjectFile object = SampleObject();
  auto defs = object.Definitions();
  ASSERT_EQ(defs.size(), 2u);  // entry + datum (local excluded)
  auto refs = object.References();
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0]->name, "external_fn");
}

TEST(ObjectFile, DuplicateDefinitionRejected) {
  ObjectFile object("dup.o");
  ASSERT_OK(object.DefineSymbol("x", SymbolBinding::kGlobal, SectionKind::kText, 0));
  auto second = object.DefineSymbol("x", SymbolBinding::kGlobal, SectionKind::kText, 8);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code(), ErrorCode::kDuplicateSymbol);
}

TEST(ObjectFile, ReferenceUpgradedToDefinition) {
  ObjectFile object("up.o");
  object.ReferenceSymbol("f");
  EXPECT_FALSE(object.FindSymbol("f")->defined);
  ASSERT_OK(object.DefineSymbol("f", SymbolBinding::kGlobal, SectionKind::kText, 0));
  EXPECT_TRUE(object.FindSymbol("f")->defined);
  EXPECT_EQ(object.symbols().size(), 1u);
}

TEST(ObjectFile, ValidateCatchesBadReloc) {
  ObjectFile object("bad.o");
  object.section(SectionKind::kText).bytes.resize(8);
  object.ReferenceSymbol("f");
  object.AddReloc(SectionKind::kText, Relocation{6, RelocKind::kAbs32, "f", 0});  // 6+4 > 8
  auto result = object.Validate();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kRelocationError);
}

TEST(ObjectFile, ValidateCatchesUnknownRelocSymbol) {
  ObjectFile object("bad2.o");
  object.section(SectionKind::kText).bytes.resize(8);
  object.AddReloc(SectionKind::kText, Relocation{0, RelocKind::kAbs32, "ghost", 0});
  auto result = object.Validate();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kRelocationError);
}

TEST(ObjectFile, ValidateCatchesSymbolBeyondSection) {
  ObjectFile object("bad3.o");
  object.section(SectionKind::kText).bytes.resize(8);
  ASSERT_OK(object.DefineSymbol("f", SymbolBinding::kGlobal, SectionKind::kText, 100));
  auto result = object.Validate();
  ASSERT_FALSE(result.ok());
}

TEST(ObjectFile, TotalSize) {
  ObjectFile object = SampleObject();
  EXPECT_EQ(object.TotalSize(), 12u + 4u + 64u);
}

// ---- Backend parameterized round-trip ---------------------------------------

class BackendRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendRoundTrip, EncodeDecodeIdentity) {
  const ObjectBackend* backend = BackendRegistry::Default().Find(GetParam());
  ASSERT_NE(backend, nullptr);
  ObjectFile object = SampleObject();
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bytes, backend->Encode(object));
  EXPECT_TRUE(backend->Matches(bytes));
  ASSERT_OK_AND_ASSIGN(ObjectFile decoded, backend->Decode(bytes));
  EXPECT_EQ(decoded, object);
}

TEST_P(BackendRoundTrip, EmptyObject) {
  const ObjectBackend* backend = BackendRegistry::Default().Find(GetParam());
  ObjectFile object("empty.o");
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bytes, backend->Encode(object));
  ASSERT_OK_AND_ASSIGN(ObjectFile decoded, backend->Decode(bytes));
  EXPECT_EQ(decoded, object);
}

TEST_P(BackendRoundTrip, SniffedByRegistry) {
  const ObjectBackend* backend = BackendRegistry::Default().Find(GetParam());
  ObjectFile object = SampleObject();
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bytes, backend->Encode(object));
  ASSERT_OK_AND_ASSIGN(ObjectFile decoded, BackendRegistry::Default().DecodeAny(bytes));
  EXPECT_EQ(decoded, object);
}

TEST_P(BackendRoundTrip, VisibilityAnnotationsRoundTrip) {
  const ObjectBackend* backend = BackendRegistry::Default().Find(GetParam());
  ObjectFile object = SampleObject();
  object.set_default_hidden(true);
  object.FindMutableSymbol("entry")->visibility = SymbolVisibility::kExported;
  object.FindMutableSymbol("datum")->visibility = SymbolVisibility::kHidden;
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bytes, backend->Encode(object));
  ASSERT_OK_AND_ASSIGN(ObjectFile decoded, backend->Decode(bytes));
  EXPECT_EQ(decoded, object);
  EXPECT_TRUE(decoded.default_hidden());
  EXPECT_EQ(decoded.FindSymbol("entry")->visibility, SymbolVisibility::kExported);
  EXPECT_EQ(decoded.FindSymbol("datum")->visibility, SymbolVisibility::kHidden);
  EXPECT_EQ(decoded.FindSymbol("local_helper")->visibility, SymbolVisibility::kDefault);
}

TEST_P(BackendRoundTrip, DefaultVisibilityEncodingUnchanged) {
  // Goldens from before the visibility extension must stay byte-identical:
  // the annotation trailer is only written when something is non-default,
  // so annotating and then reverting reproduces the original bytes exactly.
  const ObjectBackend* backend = BackendRegistry::Default().Find(GetParam());
  ObjectFile object = SampleObject();
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> plain, backend->Encode(object));
  object.FindMutableSymbol("entry")->visibility = SymbolVisibility::kExported;
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> annotated, backend->Encode(object));
  EXPECT_NE(plain, annotated);
  object.FindMutableSymbol("entry")->visibility = SymbolVisibility::kDefault;
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> reverted, backend->Encode(object));
  EXPECT_EQ(plain, reverted);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendRoundTrip,
                         ::testing::Values("xof-binary", "xof-text"));

TEST(ObjectFile, EffectiveHiddenSemantics) {
  ObjectFile object = SampleObject();
  const Symbol* entry = object.FindSymbol("entry");
  EXPECT_FALSE(object.IsEffectivelyHidden(*entry));
  object.set_default_hidden(true);
  EXPECT_TRUE(object.IsEffectivelyHidden(*entry));  // kDefault flips with the mode
  object.FindMutableSymbol("entry")->visibility = SymbolVisibility::kExported;
  EXPECT_FALSE(object.IsEffectivelyHidden(*object.FindSymbol("entry")));
  object.set_default_hidden(false);
  object.FindMutableSymbol("entry")->visibility = SymbolVisibility::kHidden;
  EXPECT_TRUE(object.IsEffectivelyHidden(*object.FindSymbol("entry")));  // hidden always wins
}

TEST(Backend, RejectsGarbage) {
  std::vector<uint8_t> garbage = {'n', 'o', 'p', 'e', 0, 1, 2};
  auto result = BackendRegistry::Default().DecodeAny(garbage);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
}

TEST(Backend, TruncatedBinaryRejected) {
  std::vector<uint8_t> bytes = EncodeObject(SampleObject());
  for (size_t cut : {size_t{5}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    auto result = DecodeObject(truncated);
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST(Backend, FormatNamesListed) {
  auto names = BackendRegistry::Default().FormatNames();
  ASSERT_EQ(names.size(), 2u);
}

// ---- ByteWriter / ByteReader -------------------------------------------------

TEST(Bytes, AllTypesRoundTrip) {
  ByteWriter w;
  w.U8(7);
  w.U32(0x12345678);
  w.I32(-42);
  w.U64(0xA1B2C3D4E5F60718ull);
  w.Str("hello");
  w.Raw({1, 2, 3});
  std::vector<uint8_t> bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_EQ(r.U8().value(), 7);
  EXPECT_EQ(r.U32().value(), 0x12345678u);
  EXPECT_EQ(r.I32().value(), -42);
  EXPECT_EQ(r.U64().value(), 0xA1B2C3D4E5F60718ull);
  EXPECT_EQ(r.Str().value(), "hello");
  EXPECT_EQ(r.Raw().value(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Bytes, TruncationDetected) {
  ByteWriter w;
  w.U32(5);  // claims 5-byte string follows
  std::vector<uint8_t> bytes = w.Take();
  ByteReader r(bytes);
  auto s = r.Str();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kParseError);
}

// ---- Archive ------------------------------------------------------------------

TEST(Archive, RoundTripAndFindDefiner) {
  Archive archive("libdemo");
  ObjectFile a("a.o");
  ASSERT_OK(a.DefineSymbol("alpha", SymbolBinding::kGlobal, SectionKind::kText, 0));
  ObjectFile b("b.o");
  ASSERT_OK(b.DefineSymbol("beta", SymbolBinding::kGlobal, SectionKind::kText, 0));
  archive.Add(a);
  archive.Add(b);
  ASSERT_OK_AND_ASSIGN(Archive decoded, Archive::Decode(archive.Encode()));
  EXPECT_EQ(decoded.name(), "libdemo");
  ASSERT_EQ(decoded.members().size(), 2u);
  const ObjectFile* definer = decoded.FindDefiner("beta");
  ASSERT_NE(definer, nullptr);
  EXPECT_EQ(definer->name(), "b.o");
  EXPECT_EQ(decoded.FindDefiner("gamma"), nullptr);
}

TEST(Archive, BadMagicRejected) {
  std::vector<uint8_t> garbage = {'X', 'A', 'R', '9', 0};
  auto result = Archive::Decode(garbage);
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace omos
