// Extended server features: program-driven dynamic loading/unlinking
// (kSysOmosLoad/kSysOmosUnload), the initializers operator, override
// blueprints, cache eviction recovery, constraint conflicts between
// libraries, and IPC-driven administration.
#include <gtest/gtest.h>

#include "src/core/server.h"
#include "src/support/faultsim.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "tests/helpers.h"

namespace omos {
namespace {

class ServerFeatures : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OmosServer>(kernel_);
    ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(R"(
.text
.global _start
_start:
  call main
  sys 0
)", "crt0.o"));
    ASSERT_OK(server_->AddFragment("/lib/crt0.o", std::move(crt0)));
  }

  Result<RunOutcome> Run(TaskId id) {
    Task* task = kernel_.FindTask(id);
    OMOS_TRY_VOID(kernel_.RunTask(*task));
    RunOutcome out;
    out.exit_code = task->exit_code();
    out.output = task->output();
    return out;
  }

  Kernel kernel_;
  std::unique_ptr<OmosServer> server_;
};

TEST_F(ServerFeatures, ProgramDrivenDynamicLoadAndCall) {
  // A plugin class with one entry point.
  ASSERT_OK_AND_ASSIGN(ObjectFile plugin, Assemble(R"(
.text
.global plugin_fn
plugin_fn:
  movi r0, 77
  ret
)", "plugin.o"));
  ASSERT_OK(server_->AddFragment("/obj/plugin.o", std::move(plugin)));

  // The main program asks OMOS to load the class (sys 19) and calls through
  // the returned address — the §5 dld-style interface, from inside the
  // simulated program.
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(StrCat(R"asm(
.text
.global main
main:
  push lr
  lea r0, blueprint
  lea r1, wanted
  sys )asm", kSysOmosLoad, R"asm(
  movi r1, 0
  beq r0, r1, fail
  callr r0
  pop lr
  ret
fail:
  movi r0, 255
  pop lr
  ret
.data
blueprint: .asciiz "(merge /obj/plugin.o)"
wanted: .asciiz "plugin_fn"
)asm"), "main.o"));
  ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/host", "(merge /lib/crt0.o /obj/main.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/host", {"host"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id));
  EXPECT_EQ(out.exit_code, 77);
}

TEST_F(ServerFeatures, DynamicUnloadRemovesMappings) {
  ASSERT_OK_AND_ASSIGN(ObjectFile plugin, Assemble(R"(
.text
.global plugin_fn
plugin_fn:
  movi r0, 5
  ret
.data
pdata: .word 9
)", "plugin.o"));
  ASSERT_OK(server_->AddFragment("/obj/plugin.o", std::move(plugin)));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  movi r0, 0
  ret
)", "main.o"));
  ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/host", "(merge /lib/crt0.o /obj/main.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/host", {"host"}));
  Task* task = kernel_.FindTask(id);

  ASSERT_OK_AND_ASSIGN(auto loaded,
                       server_->DynamicLoad(*task, "(merge /obj/plugin.o)", {"plugin_fn"}));
  size_t with_plugin = task->space().Regions().size();
  ASSERT_OK(server_->DynamicUnload(*task, loaded.text_base));
  EXPECT_LT(task->space().Regions().size(), with_plugin);
  // Unloading twice fails cleanly.
  auto again = server_->DynamicUnload(*task, loaded.text_base);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code(), ErrorCode::kNotFound);
  // The class can be loaded again after unlinking.
  ASSERT_OK(server_->DynamicLoad(*task, "(merge /obj/plugin.o)", {"plugin_fn"}));
}

TEST_F(ServerFeatures, InitializersOperatorRunsStaticConstructors) {
  // Two "C++ static initializers" and a main that checks their effect —
  // the §2.2/§3.3 initializers story.
  ASSERT_OK_AND_ASSIGN(ObjectFile inits, Assemble(R"(
.text
.global __init_alpha
__init_alpha:
  lea r1, state
  ld r2, [r1+0]
  addi r2, r2, 10
  st r2, [r1+0]
  ret
.global __init_beta
__init_beta:
  lea r1, state
  ld r2, [r1+0]
  addi r2, r2, 3
  st r2, [r1+0]
  ret
.data
.align 4
.global state
state: .word 0
)", "inits.o"));
  ASSERT_OK(server_->AddFragment("/obj/inits.o", std::move(inits)));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  push lr
  call __run_initializers
  lea r1, state
  ld r0, [r1+0]
  pop lr
  ret
)", "main.o"));
  ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/ctors",
                                "(initializers (merge /lib/crt0.o /obj/main.o /obj/inits.o))"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/ctors", {"ctors"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id));
  EXPECT_EQ(out.exit_code, 13);
}

TEST_F(ServerFeatures, OverrideBlueprintReplacesImplementation) {
  ASSERT_OK_AND_ASSIGN(ObjectFile v1, Assemble(R"(
.text
.global answer
answer:
  movi r0, 1
  ret
.global main
main:
  push lr
  call answer
  pop lr
  ret
)", "v1.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile v2, Assemble(R"(
.text
.global answer
answer:
  movi r0, 2
  ret
)", "v2.o"));
  ASSERT_OK(server_->AddFragment("/obj/v1.o", std::move(v1)));
  ASSERT_OK(server_->AddFragment("/obj/v2.o", std::move(v2)));
  // merge would reject the duplicate definition; override takes the second.
  ASSERT_OK(server_->DefineMeta("/bin/merged", "(merge /lib/crt0.o /obj/v1.o /obj/v2.o)"));
  auto merged = server_->Instantiate("/bin/merged", {}, nullptr);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.error().code(), ErrorCode::kDuplicateSymbol);

  ASSERT_OK(server_->DefineMeta("/bin/over",
                                "(override (merge /lib/crt0.o /obj/v1.o) /obj/v2.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/over", {"over"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id));
  EXPECT_EQ(out.exit_code, 2);  // internal caller rebound to the override
}

TEST_F(ServerFeatures, EvictedLibraryIsRebuiltByInstantiate) {
  ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(R"(
.text
.global f
f:
  movi r0, 4
  ret
)", "lib.o"));
  ASSERT_OK(server_->AddFragment("/obj/lib.o", std::move(lib)));
  ASSERT_OK(server_->DefineLibrary("/lib/l", "(merge /obj/lib.o)"));
  Specialization spec{"lib-constrained", {}};
  ASSERT_OK_AND_ASSIGN(const CachedImage* first, server_->Instantiate("/lib/l", spec, nullptr));
  uint32_t base = first->image.text_base;
  server_->cache().Evict(first->key);
  uint64_t work = 0;
  ASSERT_OK_AND_ASSIGN(const CachedImage* rebuilt, server_->Instantiate("/lib/l", spec, &work));
  EXPECT_GT(work, 0u);  // rebuilt, not a hit
  // Strong constraint: the rebuilt image reuses the same placement, so
  // stale clients remain correct.
  EXPECT_EQ(rebuilt->image.text_base, base);
}

TEST_F(ServerFeatures, ConflictingLibraryHintsSpill) {
  ASSERT_OK_AND_ASSIGN(ObjectFile a, Assemble(".text\n.global fa\nfa: ret\n", "a.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile b, Assemble(".text\n.global fb\nfb: ret\n", "b.o"));
  ASSERT_OK(server_->AddFragment("/obj/a.o", std::move(a)));
  ASSERT_OK(server_->AddFragment("/obj/b.o", std::move(b)));
  // Both libraries want the same text base.
  ASSERT_OK(server_->DefineLibrary("/lib/a",
                                   "(constraint-list \"T\" 0x3000000)\n(merge /obj/a.o)"));
  ASSERT_OK(server_->DefineLibrary("/lib/b",
                                   "(constraint-list \"T\" 0x3000000)\n(merge /obj/b.o)"));
  Specialization spec{"lib-constrained", {}};
  ASSERT_OK_AND_ASSIGN(const CachedImage* la, server_->Instantiate("/lib/a", spec, nullptr));
  ASSERT_OK_AND_ASSIGN(const CachedImage* lb, server_->Instantiate("/lib/b", spec, nullptr));
  EXPECT_EQ(la->image.text_base, 0x3000000u);
  EXPECT_NE(lb->image.text_base, 0x3000000u);
  ASSERT_EQ(server_->conflicts().size(), 1u);
  EXPECT_EQ(server_->conflicts()[0].wanted, 0x3000000u);
}

TEST_F(ServerFeatures, DefineMetaOverIpc) {
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  movi r0, 11
  ret
)", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  Channel channel = server_->MakeChannel();
  OmosRequest request;
  request.op = OmosOp::kDefineMeta;
  request.path = "/bin/remote";
  request.specialization = "(merge /lib/crt0.o /obj/m.o)";  // blueprint field
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  ASSERT_TRUE(reply.ok) << reply.error;
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/remote", {"remote"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id));
  EXPECT_EQ(out.exit_code, 11);
}

TEST_F(ServerFeatures, DynamicLoadOverIpcReturnsSymbolValues) {
  ASSERT_OK_AND_ASSIGN(ObjectFile plugin, Assemble(R"(
.text
.global pf
pf:
  movi r0, 3
  ret
)", "p.o"));
  ASSERT_OK(server_->AddFragment("/obj/p.o", std::move(plugin)));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 0\n  ret\n", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/host", "(merge /lib/crt0.o /obj/m.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/host", {"host"}));

  Channel channel = server_->MakeChannel();
  OmosRequest request;
  request.op = OmosOp::kDynamicLoad;
  request.path = "(merge /obj/p.o)";
  request.task_handle = id;
  request.symbols = {"pf", "missing"};
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  ASSERT_TRUE(reply.ok) << reply.error;
  ASSERT_EQ(reply.symbol_values.size(), 2u);
  EXPECT_NE(reply.symbol_values[0], 0u);
  EXPECT_EQ(reply.symbol_values[1], 0u);
}

TEST_F(ServerFeatures, ReleaseTaskDropsRuntimeState) {
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 0\n  ret\n", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/p", "(merge /lib/crt0.o /obj/m.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/p", {"p"}));
  Task* task = kernel_.FindTask(id);
  server_->ReleaseTask(id);
  auto unload = server_->DynamicUnload(*task, 0x101000);
  ASSERT_FALSE(unload.ok());  // no runtime state left
}

TEST_F(ServerFeatures, ShowRestrictsLibraryInterface) {
  // project/show in a blueprint: only the exported api survives.
  ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(R"(
.text
.global api_entry
api_entry:
  push lr
  call impl_detail
  pop lr
  ret
impl_detail_pad: nop
.global impl_detail
impl_detail:
  movi r0, 21
  ret
)", "lib.o"));
  ASSERT_OK(server_->AddFragment("/obj/lib.o", std::move(lib)));
  ASSERT_OK_AND_ASSIGN(Module shown,
                       server_->EvaluateBlueprint("(show \"^api_\" (merge /obj/lib.o))"));
  ASSERT_OK_AND_ASSIGN(auto names, shown.ExportNames());
  EXPECT_EQ(names, (std::vector<std::string>{"api_entry"}));
  // The hidden detail is frozen: linking still works and runs.
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  push lr
  call api_entry
  pop lr
  ret
)", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta(
      "/bin/clean", "(merge /lib/crt0.o /obj/m.o (show \"^api_\" /obj/lib.o))"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/clean", {"clean"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id));
  EXPECT_EQ(out.exit_code, 21);
}


TEST_F(ServerFeatures, RedefiningLibraryInvalidatesDependentImages) {
  ASSERT_OK_AND_ASSIGN(ObjectFile v1, Assemble(R"(
.text
.global answer
answer:
  movi r0, 1
  ret
)", "v1.o"));
  ASSERT_OK(server_->AddFragment("/obj/v1.o", std::move(v1)));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  push lr
  call answer
  pop lr
  ret
)", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineLibrary("/lib/ans", "(merge /obj/v1.o)"));
  ASSERT_OK(server_->DefineMeta("/bin/q", "(merge /lib/crt0.o /obj/m.o /lib/ans)"));
  ASSERT_OK_AND_ASSIGN(TaskId id1, server_->IntegratedExec("/bin/q", {"q"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out1, Run(id1));
  EXPECT_EQ(out1.exit_code, 1);

  // "A library fix is instantly incorporated into all clients" (sec. 2.1):
  // redefine the library; the cached client image must be rebuilt.
  ASSERT_OK_AND_ASSIGN(ObjectFile v2, Assemble(R"(
.text
.global answer
answer:
  movi r0, 2
  ret
)", "v2.o"));
  ASSERT_OK(server_->AddFragment("/obj/v2.o", std::move(v2)));
  ASSERT_OK(server_->DefineLibrary("/lib/ans", "(merge /obj/v2.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id2, server_->IntegratedExec("/bin/q", {"q"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out2, Run(id2));
  EXPECT_EQ(out2.exit_code, 2);
}

TEST_F(ServerFeatures, RedefiningFragmentInvalidatesReferencingMetas) {
  ASSERT_OK_AND_ASSIGN(ObjectFile v1,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 10\n  ret\n", "f.o"));
  ASSERT_OK(server_->AddFragment("/obj/f.o", std::move(v1)));
  ASSERT_OK(server_->DefineMeta("/bin/frag", "(merge /lib/crt0.o /obj/f.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id1, server_->IntegratedExec("/bin/frag", {"frag"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out1, Run(id1));
  EXPECT_EQ(out1.exit_code, 10);

  ASSERT_OK_AND_ASSIGN(ObjectFile v2,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 20\n  ret\n", "f.o"));
  ASSERT_OK(server_->AddFragment("/obj/f.o", std::move(v2)));
  ASSERT_OK_AND_ASSIGN(TaskId id2, server_->IntegratedExec("/bin/frag", {"frag"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out2, Run(id2));
  EXPECT_EQ(out2.exit_code, 20);
}

TEST_F(ServerFeatures, ExportNamespaceToFsMakesBinExecutable) {
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 9\n  ret\n", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/tool", "(merge /lib/crt0.o /obj/m.o)"));
  ASSERT_OK_AND_ASSIGN(int exported, server_->ExportNamespaceToFs("/bin", "/usr/bin"));
  EXPECT_EQ(exported, 1);
  // Ordinary path-based exec now reaches the server via the interpreter line.
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->ExecFile("/usr/bin/tool", {"tool"}, true));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id));
  EXPECT_EQ(out.exit_code, 9);
}


TEST_F(ServerFeatures, OptimizePlacementsResolvesConflicts) {
  ASSERT_OK_AND_ASSIGN(ObjectFile a, Assemble(".text\n.global fa\nfa: ret\n", "a.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile b, Assemble(".text\n.global fb\nfb: ret\n", "b.o"));
  ASSERT_OK(server_->AddFragment("/obj/a.o", std::move(a)));
  ASSERT_OK(server_->AddFragment("/obj/b.o", std::move(b)));
  ASSERT_OK(server_->DefineLibrary("/lib/a",
                                   "(constraint-list \"T\" 0x3000000)\n(merge /obj/a.o)"));
  ASSERT_OK(server_->DefineLibrary("/lib/b",
                                   "(constraint-list \"T\" 0x3000000)\n(merge /obj/b.o)"));
  Specialization spec{"lib-constrained", {}};
  ASSERT_OK(server_->Instantiate("/lib/a", spec, nullptr));
  ASSERT_OK(server_->Instantiate("/lib/b", spec, nullptr));
  ASSERT_EQ(server_->conflicts().size(), 1u);

  // The automatic feedback pass (sec. 4.1): conflicts are consumed and every
  // object gets a stable, conflict-free home.
  int evicted = server_->OptimizePlacements();
  EXPECT_GE(evicted, 1);
  EXPECT_TRUE(server_->conflicts().empty());
  // Rebuilt instantiations reuse the optimized placements with no new
  // conflicts, even though the old hints still collide.
  ASSERT_OK_AND_ASSIGN(const CachedImage* la, server_->Instantiate("/lib/a", spec, nullptr));
  ASSERT_OK_AND_ASSIGN(const CachedImage* lb, server_->Instantiate("/lib/b", spec, nullptr));
  EXPECT_NE(la->image.text_base, lb->image.text_base);
  EXPECT_TRUE(server_->conflicts().empty());
}

TEST_F(ServerFeatures, SymbolsForTaskCoversProgramAndLibraries) {
  ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(R"(
.text
.global lib_fn
lib_fn:
  movi r0, 8
  ret
)", "lib.o"));
  ASSERT_OK(server_->AddFragment("/obj/lib.o", std::move(lib)));
  ASSERT_OK(server_->DefineLibrary("/lib/l", "(merge /obj/lib.o)"));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  push lr
  call lib_fn
  pop lr
  ret
)", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/p", "(merge /lib/crt0.o /obj/m.o /lib/l)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/p", {"p"}));
  ASSERT_OK_AND_ASSIGN(auto symbols, server_->SymbolsForTask(id));
  bool has_main = false;
  bool has_lib_fn = false;
  for (const ImageSymbol& sym : symbols) {
    has_main |= sym.name == "main";
    has_lib_fn |= sym.name == "lib_fn";
  }
  EXPECT_TRUE(has_main);
  EXPECT_TRUE(has_lib_fn);
  EXPECT_FALSE(server_->SymbolsForTask(9999).ok());
}

// ---- Cache integrity ----------------------------------------------------------

TEST_F(ServerFeatures, CorruptedCacheEntryIsRebuiltByteIdentical) {
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  movi r0, 42
  ret
.data
greeting: .asciiz "hello"
)", "main.o"));
  ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/main.o)"));

  uint64_t work = 0;
  ASSERT_OK_AND_ASSIGN(const CachedImage* first, server_->Instantiate("/bin/prog", {}, &work));
  std::vector<uint8_t> original_text = first->image.text;
  std::vector<uint8_t> original_data = first->image.data;
  uint32_t original_entry = first->image.entry;
  uint32_t original_base = first->image.text_base;
  ASSERT_EQ(server_->cache_stats().corruption_rebuilds, 0u);

  // Rot one bit of the cached image. The next Get detects the checksum
  // mismatch, evicts, and Instantiate transparently rebuilds.
  uint64_t rebuild_work = 0;
  const CachedImage* rebuilt = nullptr;
  {
    ScopedFaultPlan plan(FaultPlan().Arm("cache.bitrot", FaultSpec::Nth(1)));
    ASSERT_OK_AND_ASSIGN(rebuilt, server_->Instantiate("/bin/prog", {}, &rebuild_work));
  }
  EXPECT_EQ(server_->cache_stats().corruption_rebuilds, 1u);
  EXPECT_GT(rebuild_work, 0u);  // a real rebuild, not a cache hit
  // The placement survived the eviction, so the rebuild is byte-identical.
  EXPECT_EQ(rebuilt->image.text, original_text);
  EXPECT_EQ(rebuilt->image.data, original_data);
  EXPECT_EQ(rebuilt->image.entry, original_entry);
  EXPECT_EQ(rebuilt->image.text_base, original_base);

  // A clean second pass is an ordinary hit: no further rebuild counted.
  uint64_t hit_work = 0;
  ASSERT_OK(server_->Instantiate("/bin/prog", {}, &hit_work));
  EXPECT_EQ(server_->cache_stats().corruption_rebuilds, 1u);
}

TEST_F(ServerFeatures, CorruptedProgramStillRunsCorrectly) {
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  movi r0, 42
  ret
)", "main.o"));
  ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/main.o)"));
  uint64_t work = 0;
  ASSERT_OK(server_->Instantiate("/bin/prog", {}, &work));
  ScopedFaultPlan plan(FaultPlan().Arm("cache.bitrot", FaultSpec::Nth(1)));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/prog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id));
  EXPECT_EQ(out.exit_code, 42);  // rot never reaches the running program
  EXPECT_EQ(server_->cache_stats().corruption_rebuilds, 1u);
}

// ---- Crash / recovery ---------------------------------------------------------

TEST_F(ServerFeatures, SnapshotRestoreYieldsIdenticalImages) {
  ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(R"(
.text
.global lib_fn
lib_fn:
  movi r0, 40
  ret
)", "lib.o"));
  ASSERT_OK(server_->AddFragment("/obj/lib.o", std::move(lib)));
  ASSERT_OK(server_->DefineLibrary("/lib/l", "(merge /obj/lib.o)"));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  push lr
  call lib_fn
  pop lr
  addi r0, r0, 2
  ret
)", "main.o"));
  ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/main.o /lib/l)"));

  uint64_t work = 0;
  ASSERT_OK_AND_ASSIGN(const CachedImage* before, server_->Instantiate("/bin/prog", {}, &work));
  std::vector<uint8_t> original_text = before->image.text;
  uint32_t original_entry = before->image.entry;
  ASSERT_OK_AND_ASSIGN(TaskId id_a, server_->IntegratedExec("/bin/prog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out_a, Run(id_a));
  ASSERT_EQ(out_a.exit_code, 42);

  std::string snapshot = server_->Snapshot();

  // "Crash": a brand-new kernel and server, fed only the snapshot.
  Kernel kernel2;
  OmosServer restored(kernel2);
  ASSERT_OK(restored.Restore(snapshot));
  // The image cache starts cold but rebuilds at the adopted placements, so
  // the restored server serves byte-identical images with the same entry.
  uint64_t rebuild_work = 0;
  ASSERT_OK_AND_ASSIGN(const CachedImage* after,
                       restored.Instantiate("/bin/prog", {}, &rebuild_work));
  EXPECT_EQ(after->image.text, original_text);
  EXPECT_EQ(after->image.entry, original_entry);
  EXPECT_GT(rebuild_work, 0u);

  ASSERT_OK_AND_ASSIGN(TaskId id_b, restored.IntegratedExec("/bin/prog", {"prog"}));
  Task* task_b = kernel2.FindTask(id_b);
  ASSERT_OK(kernel2.RunTask(*task_b));
  EXPECT_EQ(task_b->exit_code(), 42);
}

TEST_F(ServerFeatures, SnapshotRoundTripsPreferredOrder) {
  ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(R"(
.text
.global f_hot
f_hot:
  ret
.global f_cold
f_cold:
  ret
)", "lib.o"));
  ASSERT_OK(server_->AddFragment("/obj/lib.o", std::move(lib)));
  ASSERT_OK(server_->DefineLibrary("/lib/l", "(merge /obj/lib.o)"));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  push lr
  call f_hot
  call f_hot
  call f_cold
  pop lr
  movi r0, 0
  ret
)", "main.o"));
  ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/main.o /lib/l)"));
  Specialization monitor;
  monitor.name = "monitor";
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/prog", {"prog"}, monitor));
  ASSERT_OK(Run(id));
  ASSERT_OK(server_->DerivePreferredOrder("/bin/prog"));
  ASSERT_TRUE(server_->HasPreferredOrder("/bin/prog"));

  Kernel kernel2;
  OmosServer restored(kernel2);
  ASSERT_OK(restored.Restore(server_->Snapshot()));
  EXPECT_TRUE(restored.HasPreferredOrder("/bin/prog"));
}

TEST_F(ServerFeatures, DamagedSnapshotRejectedWithCorrupted) {
  ASSERT_OK(server_->DefineMeta("/bin/thing", "(merge /lib/crt0.o)"));
  std::string snapshot = server_->Snapshot();

  // Flip a byte anywhere in the body: the trailing checksum must catch it.
  std::string damaged = snapshot;
  damaged[snapshot.size() / 3] ^= 0x01;
  Kernel kernel2;
  OmosServer restored(kernel2);
  auto result = restored.Restore(damaged);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCorrupted);
  // Nothing was applied: the namespace is still empty.
  EXPECT_EQ(restored.name_space().size(), 0u);

  // Truncation (losing the check line entirely) is also rejected.
  auto truncated = restored.Restore(snapshot.substr(0, snapshot.size() / 2));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code(), ErrorCode::kCorrupted);
}

// ---- Teardown edges -----------------------------------------------------------

TEST_F(ServerFeatures, TeardownEdgesAreClean) {
  ASSERT_OK_AND_ASSIGN(ObjectFile plugin, Assemble(R"(
.text
.global plugin_fn
plugin_fn:
  movi r0, 5
  ret
)", "plugin.o"));
  ASSERT_OK(server_->AddFragment("/obj/plugin.o", std::move(plugin)));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  movi r0, 0
  ret
)", "main.o"));
  ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/host", "(merge /lib/crt0.o /obj/main.o)"));

  // Releasing a task the server never saw is a harmless no-op.
  server_->ReleaseTask(9999);

  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/host", {"host"}));
  Task* task = kernel_.FindTask(id);
  ASSERT_OK_AND_ASSIGN(auto loaded,
                       server_->DynamicLoad(*task, "(merge /obj/plugin.o)", {"plugin_fn"}));

  // Unload, then unload again: the second is a clean kNotFound, not a crash.
  ASSERT_OK(server_->DynamicUnload(*task, loaded.text_base));
  auto again = server_->DynamicUnload(*task, loaded.text_base);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code(), ErrorCode::kNotFound);

  // Release the task's runtime state; unloading through the dead runtime is
  // a clean error too, and releasing twice stays a no-op.
  server_->ReleaseTask(id);
  auto after_release = server_->DynamicUnload(*task, loaded.text_base);
  ASSERT_FALSE(after_release.ok());
  EXPECT_EQ(after_release.error().code(), ErrorCode::kNotFound);
  server_->ReleaseTask(id);

  // The server's runtime table is not corrupted: a fresh exec of the same
  // program maps and runs normally.
  ASSERT_OK_AND_ASSIGN(TaskId id2, server_->IntegratedExec("/bin/host", {"host"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id2));
  EXPECT_EQ(out.exit_code, 0);
}

TEST_F(ServerFeatures, SnapshotRoundTripsLayoutGeneration) {
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 1\n  ret\n", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/m.o)"));
  uint64_t work = 0;
  ASSERT_OK(server_->Instantiate("/bin/prog", {}, &work));

  // Bump the layout generation past its initial value: a conflicting pair
  // plus the administrative re-pack forces at least one live move.
  ASSERT_OK_AND_ASSIGN(ObjectFile a, Assemble(".text\n.global fa\nfa: ret\n", "a.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile b, Assemble(".text\n.global fb\nfb: ret\n", "b.o"));
  ASSERT_OK(server_->AddFragment("/obj/a.o", std::move(a)));
  ASSERT_OK(server_->AddFragment("/obj/b.o", std::move(b)));
  ASSERT_OK(server_->DefineLibrary("/lib/a",
                                   "(constraint-list \"T\" 0x3000000)\n(merge /obj/a.o)"));
  ASSERT_OK(server_->DefineLibrary("/lib/b",
                                   "(constraint-list \"T\" 0x3000000)\n(merge /obj/b.o)"));
  Specialization spec{"lib-constrained", {}};
  ASSERT_OK(server_->Instantiate("/lib/a", spec, nullptr));
  ASSERT_OK(server_->Instantiate("/lib/b", spec, nullptr));
  ASSERT_GE(server_->OptimizePlacements(), 1);

  std::string snapshot = server_->Snapshot();
  size_t tag = snapshot.find("layoutgen ");
  ASSERT_NE(tag, std::string::npos);
  std::string layoutgen_line = snapshot.substr(tag, snapshot.find('\n', tag) - tag);
  EXPECT_NE(layoutgen_line, "layoutgen 1");  // the re-pack advanced it

  // A restored server continues the same generation sequence, so prelink
  // stamps taken before the crash stay comparable after it.
  Kernel kernel2;
  OmosServer restored(kernel2);
  ASSERT_OK(restored.Restore(snapshot));
  std::string again = restored.Snapshot();
  size_t tag2 = again.find("layoutgen ");
  ASSERT_NE(tag2, std::string::npos);
  EXPECT_EQ(again.substr(tag2, again.find('\n', tag2) - tag2), layoutgen_line);
}

// ---- Fleet-wide prelink ---------------------------------------------------------

TEST_F(ServerFeatures, PrelinkedExecHitIsCheaperThanIntegrated) {
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 7\n  ret\n", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/tool", "(merge /lib/crt0.o /obj/m.o)"));

  ASSERT_OK_AND_ASSIGN(int prelinked, server_->PrelinkNamespace("/bin"));
  EXPECT_EQ(prelinked, 1);
  EXPECT_TRUE(server_->prelink_enabled());
  EXPECT_EQ(server_->PrelinkValidCount(), 1u);

  // Warm integrated exec: pays the cache-lookup round trip.
  ASSERT_OK_AND_ASSIGN(TaskId warm, server_->IntegratedExec("/bin/tool", {"tool"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome warm_out, Run(warm));
  EXPECT_EQ(warm_out.exit_code, 7);
  uint64_t integrated_sys = kernel_.FindTask(warm)->sys_cycles();

  Counter* hits = MetricsRegistry::Global().GetCounter("prelink.hits");
  uint64_t hits_before = hits->value();
  ASSERT_OK_AND_ASSIGN(TaskId fast, server_->PrelinkedExec("/bin/tool", {"tool"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome fast_out, Run(fast));
  EXPECT_EQ(fast_out.exit_code, 7);
  EXPECT_EQ(hits->value(), hits_before + 1);
  // The stamp-valid hit bills only the prelink-table lookup, strictly less
  // than the integrated path's omos_cache_lookup.
  EXPECT_LT(kernel_.FindTask(fast)->sys_cycles(), integrated_sys);
}

TEST_F(ServerFeatures, PrelinkedExecMissFallsBackAndRecordsEntry) {
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 3\n  ret\n", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/tool", "(merge /lib/crt0.o /obj/m.o)"));

  Counter* misses = MetricsRegistry::Global().GetCounter("prelink.misses");
  Counter* hits = MetricsRegistry::Global().GetCounter("prelink.hits");
  uint64_t misses_before = misses->value();
  // No PrelinkNamespace ran: the first exec misses the table, falls back to
  // a full Instantiate, and records an entry on the way out.
  ASSERT_OK_AND_ASSIGN(TaskId first, server_->PrelinkedExec("/bin/tool", {"tool"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome first_out, Run(first));
  EXPECT_EQ(first_out.exit_code, 3);
  EXPECT_EQ(misses->value(), misses_before + 1);

  uint64_t hits_before = hits->value();
  ASSERT_OK_AND_ASSIGN(TaskId second, server_->PrelinkedExec("/bin/tool", {"tool"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome second_out, Run(second));
  EXPECT_EQ(second_out.exit_code, 3);
  EXPECT_EQ(hits->value(), hits_before + 1);
}

TEST_F(ServerFeatures, PrelinkStaleAfterFragmentRedefineRecovers) {
  ASSERT_OK_AND_ASSIGN(ObjectFile v1,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 10\n  ret\n", "f.o"));
  ASSERT_OK(server_->AddFragment("/obj/f.o", std::move(v1)));
  ASSERT_OK(server_->DefineMeta("/bin/frag", "(merge /lib/crt0.o /obj/f.o)"));
  ASSERT_OK(server_->PrelinkNamespace("/bin"));
  ASSERT_OK_AND_ASSIGN(TaskId warm, server_->PrelinkedExec("/bin/frag", {"frag"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome warm_out, Run(warm));
  EXPECT_EQ(warm_out.exit_code, 10);

  // Redefining the fragment invalidates the cached image behind the prelink
  // entry: the next prelinked exec must NOT serve the stale version.
  ASSERT_OK_AND_ASSIGN(ObjectFile v2,
                       Assemble(".text\n.global main\nmain:\n  movi r0, 20\n  ret\n", "f.o"));
  ASSERT_OK(server_->AddFragment("/obj/f.o", std::move(v2)));
  Counter* stale = MetricsRegistry::Global().GetCounter("prelink.stale");
  uint64_t stale_before = stale->value();
  ASSERT_OK_AND_ASSIGN(TaskId rebuilt, server_->PrelinkedExec("/bin/frag", {"frag"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome rebuilt_out, Run(rebuilt));
  EXPECT_EQ(rebuilt_out.exit_code, 20);
  EXPECT_EQ(stale->value(), stale_before + 1);

  // The fallback re-recorded the entry and queued a background repair; after
  // the idle lane drains, the table is fully stamp-valid and hits again.
  server_->DrainBackgroundWork();
  EXPECT_EQ(server_->PrelinkValidCount(), 1u);
  Counter* hits = MetricsRegistry::Global().GetCounter("prelink.hits");
  uint64_t hits_before = hits->value();
  ASSERT_OK_AND_ASSIGN(TaskId again, server_->PrelinkedExec("/bin/frag", {"frag"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome again_out, Run(again));
  EXPECT_EQ(again_out.exit_code, 20);
  EXPECT_EQ(hits->value(), hits_before + 1);
}

TEST_F(ServerFeatures, PlacementCollisionSweepTriggersRepairAndRecovers) {
  // A prelinked program linked against a constrained library, then a seeded
  // sweep of colliding libraries whose hints all contest the same range:
  // every collision schedules the recorded re-solve + re-link repair, and
  // after each idle-lane drain the prelinked exec still hits and still
  // produces the right answer.
  ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(R"(
.text
.global lib_fn
lib_fn:
  movi r0, 42
  ret
)", "lib.o"));
  ASSERT_OK(server_->AddFragment("/obj/lib.o", std::move(lib)));
  ASSERT_OK(server_->DefineLibrary("/lib/base",
                                   "(constraint-list \"T\" 0x3000000)\n(merge /obj/lib.o)"));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  push lr
  call lib_fn
  pop lr
  ret
)", "m.o"));
  ASSERT_OK(server_->AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/tool", "(merge /lib/crt0.o /obj/m.o /lib/base)"));
  ASSERT_OK(server_->PrelinkNamespace("/bin"));

  Counter* repairs = MetricsRegistry::Global().GetCounter("prelink.repairs");
  uint64_t repairs_before = repairs->value();
  for (int round = 0; round < 3; ++round) {
    // Each rival hints the exact text base the prelinked program's library
    // occupies — a guaranteed placement collision.
    ASSERT_OK_AND_ASSIGN(ObjectFile rival,
                         Assemble(StrCat(".text\n.global rival", round, "\nrival", round,
                                         ": ret\n"),
                                  StrCat("rival", round, ".o")));
    std::string obj_path = StrCat("/obj/rival", round, ".o");
    std::string lib_path = StrCat("/lib/rival", round);
    ASSERT_OK(server_->AddFragment(obj_path, std::move(rival)));
    ASSERT_OK(server_->DefineLibrary(
        lib_path, StrCat("(constraint-list \"T\" 0x3000000)\n(merge ", obj_path, ")")));
    Specialization spec{"collide", {}};
    ASSERT_OK(server_->Instantiate(lib_path, spec, nullptr));

    server_->DrainBackgroundWork();
    EXPECT_EQ(server_->PrelinkValidCount(), 1u) << "round " << round;
    ASSERT_OK_AND_ASSIGN(TaskId id, server_->PrelinkedExec("/bin/tool", {"tool"}));
    ASSERT_OK_AND_ASSIGN(RunOutcome out, Run(id));
    EXPECT_EQ(out.exit_code, 42) << "round " << round;
  }
  EXPECT_GE(repairs->value(), repairs_before + 1);

  // The administrative re-pack moves live placements wholesale and then
  // immediately re-links the prelink table against the new layout — stamps
  // stay valid and the warm path stays relocation-free.
  (void)server_->OptimizePlacements();
  EXPECT_EQ(server_->PrelinkValidCount(), 1u);
  Counter* at_map = MetricsRegistry::Global().GetCounter("link.relocations_at_map");
  uint64_t at_map_before = at_map->value();
  ASSERT_OK_AND_ASSIGN(TaskId final_id, server_->PrelinkedExec("/bin/tool", {"tool"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome final_out, Run(final_id));
  EXPECT_EQ(final_out.exit_code, 42);
  EXPECT_EQ(at_map->value(), at_map_before);  // zero relocations at map time
}

}  // namespace
}  // namespace omos
