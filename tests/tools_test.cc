// OFE library operations: listings, renames, visibility edits, stripping,
// trial links, host-file round trips.
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/support/strings.h"
#include "src/support/trace.h"
#include "src/tools/ofe_lib.h"
#include "src/vasm/assembler.h"
#include "tests/helpers.h"

namespace omos {
namespace {

ObjectFile DemoObject() {
  auto result = Assemble(R"(
.text
.global compute
compute:
  push lr
  call helper
  addi r0, r0, 1
  pop lr
  ret
.global helper
helper:
  movi r0, 41
  ret
scratch:
  nop
.data
.global table
table: .word helper
)", "demo.o");
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().ToString());
  return std::move(result).value();
}

TEST(Ofe, SymbolListingShowsEverything) {
  std::string listing = OfeSymbolListing(DemoObject());
  EXPECT_NE(listing.find("compute global text +0"), std::string::npos) << listing;
  EXPECT_NE(listing.find("helper global text"), std::string::npos);
  EXPECT_NE(listing.find("scratch local text"), std::string::npos);
  EXPECT_NE(listing.find("table global data +0"), std::string::npos);
}

TEST(Ofe, RelocListing) {
  std::string listing = OfeRelocListing(DemoObject());
  EXPECT_NE(listing.find("text+12 abs32 -> helper"), std::string::npos) << listing;
  EXPECT_NE(listing.find("data+0 abs32 -> helper"), std::string::npos);
}

TEST(Ofe, DisassemblyHasLabelsAndAnnotations) {
  ASSERT_OK_AND_ASSIGN(std::string text, OfeDisassembly(DemoObject()));
  EXPECT_NE(text.find("compute:"), std::string::npos);
  EXPECT_NE(text.find("helper:"), std::string::npos);
  EXPECT_NE(text.find("abs32(helper)"), std::string::npos);
  EXPECT_NE(text.find("addi r0, r0, 1"), std::string::npos);
}

TEST(Ofe, RenameFollowsRelocations) {
  ASSERT_OK_AND_ASSIGN(ObjectFile renamed, OfeRename(DemoObject(), "^helper$", "impl_&"));
  EXPECT_EQ(renamed.FindSymbol("helper"), nullptr);
  ASSERT_NE(renamed.FindSymbol("impl_helper"), nullptr);
  // Both the text call and the data word follow.
  bool text_follows = false;
  for (const Relocation& reloc : renamed.section(SectionKind::kText).relocs) {
    if (reloc.symbol == "impl_helper") {
      text_follows = true;
    }
  }
  EXPECT_TRUE(text_follows);
  EXPECT_EQ(renamed.section(SectionKind::kData).relocs[0].symbol, "impl_helper");
  // And the result still links and runs.
  LayoutSpec layout;
  layout.allow_unresolved = false;
  (void)layout;
}

TEST(Ofe, RenameCollisionRejected) {
  auto result = OfeRename(DemoObject(), "^(compute|helper)$", "same_name");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kDuplicateSymbol);
}

TEST(Ofe, HideDemotesToLocal) {
  ASSERT_OK_AND_ASSIGN(ObjectFile hidden, OfeHide(DemoObject(), "^helper$"));
  EXPECT_EQ(hidden.FindSymbol("helper")->binding, SymbolBinding::kLocal);
  EXPECT_EQ(hidden.FindSymbol("compute")->binding, SymbolBinding::kGlobal);
  EXPECT_TRUE(hidden.Definitions().size() == 2u);  // compute + table
}

TEST(Ofe, WeakenAllowsOverridingMerge) {
  ASSERT_OK_AND_ASSIGN(ObjectFile weakened, OfeWeaken(DemoObject(), "^helper$"));
  EXPECT_EQ(weakened.FindSymbol("helper")->binding, SymbolBinding::kWeak);
  // A strong definition elsewhere now merges cleanly.
  ASSERT_OK_AND_ASSIGN(ObjectFile strong, Assemble(R"(
.text
.global helper
helper:
  movi r0, 99
  ret
)", "strong.o"));
  ASSERT_OK_AND_ASSIGN(LinkedImage image,
                       OfeLink({weakened, strong}, 0x100000, /*allow_unresolved=*/false));
  // The strong definition won.
  const ImageSymbol* helper = image.FindSymbol("helper");
  ASSERT_NE(helper, nullptr);
}

TEST(Ofe, StripLocalsKeepsReferencedOnes) {
  ASSERT_OK_AND_ASSIGN(ObjectFile obj, Assemble(R"(
.text
.global f
f:
  call used_local
  ret
used_local:
  ret
unused_local:
  nop
)", "s.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile stripped, OfeStripLocals(obj));
  EXPECT_NE(stripped.FindSymbol("used_local"), nullptr);
  EXPECT_EQ(stripped.FindSymbol("unused_local"), nullptr);
  EXPECT_NE(stripped.FindSymbol("f"), nullptr);
}

TEST(Ofe, TrialLinkReportsUnresolved) {
  ASSERT_OK_AND_ASSIGN(ObjectFile obj, Assemble(R"(
.text
.global f
f:
  call missing_fn
  ret
)", "u.o"));
  ASSERT_OK_AND_ASSIGN(LinkedImage image, OfeLink({obj}, 0x100000, /*allow_unresolved=*/true));
  EXPECT_EQ(image.unresolved, (std::vector<std::string>{"missing_fn"}));
}

TEST(Ofe, HostFileRoundTripBothFormats) {
  const char* tmp = std::getenv("TMPDIR");
  std::string base = StrCat(tmp != nullptr ? tmp : "/tmp", "/ofe_test_obj");
  ObjectFile object = DemoObject();
  for (const char* format : {"xof-binary", "xof-text"}) {
    std::string path = StrCat(base, ".", format);
    ASSERT_OK(SaveObjectFile(object, path, format));
    ASSERT_OK_AND_ASSIGN(ObjectFile loaded, LoadObjectFile(path));
    EXPECT_EQ(loaded, object) << format;
    std::remove(path.c_str());
  }
}

TEST(Ofe, MissingHostFileIsIoError) {
  auto result = LoadObjectFile("/definitely/not/here.xo");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kIoError);
}

TEST(Ofe, TraceReportAggregatesSpans) {
  TraceSetEnabled(true);
  TraceClear();
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("report.work");
    span.AddSimCycles(10, 5);
  }
  TraceInstant("report.mark");
  std::string json = TraceToChromeJson();
  TraceSetEnabled(false);
  TraceClear();

  ASSERT_OK_AND_ASSIGN(std::string report, OfeTraceReport(json));
  EXPECT_NE(report.find("report.work"), std::string::npos);
  EXPECT_NE(report.find("x3"), std::string::npos);
  EXPECT_NE(report.find("sim 30+15"), std::string::npos);
  EXPECT_NE(report.find("report.mark"), std::string::npos);
  EXPECT_NE(report.find("(instant)"), std::string::npos);

  EXPECT_FALSE(OfeTraceReport("{not a trace}").ok());
}

}  // namespace
}  // namespace omos
