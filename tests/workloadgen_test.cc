// The workload generators themselves: determinism, parameter scaling,
// structural properties the benchmarks rely on.
#include <gtest/gtest.h>

#include "src/support/strings.h"
#include "src/workloads/workloads.h"
#include "tests/helpers.h"

namespace omos {
namespace {

WorkloadParams SmallParams() {
  WorkloadParams params;
  params.libc_filler = 10;
  params.alpha_functions = 12;
  params.libm_functions = 6;
  params.libl_functions = 4;
  params.libcpp_functions = 8;
  params.codegen_files = 4;
  params.codegen_funcs_per_file = 4;  // covers all four library families (j % 4)
  return params;
}

TEST(WorkloadGen, Deterministic) {
  ASSERT_OK_AND_ASSIGN(Workloads a, BuildWorkloads(SmallParams()));
  ASSERT_OK_AND_ASSIGN(Workloads b, BuildWorkloads(SmallParams()));
  EXPECT_EQ(a.crt0, b.crt0);
  EXPECT_EQ(a.ls_obj, b.ls_obj);
  ASSERT_EQ(a.codegen_objs.size(), b.codegen_objs.size());
  for (size_t i = 0; i < a.codegen_objs.size(); ++i) {
    EXPECT_EQ(a.codegen_objs[i], b.codegen_objs[i]) << i;
  }
  EXPECT_EQ(a.libc.Encode(), b.libc.Encode());
}

TEST(WorkloadGen, ParametersControlLibrarySizes) {
  WorkloadParams params = SmallParams();
  ASSERT_OK_AND_ASSIGN(Workloads w, BuildWorkloads(params));
  EXPECT_EQ(w.alpha1.members().size(), static_cast<size_t>(params.alpha_functions));
  EXPECT_EQ(w.libm.members().size(), static_cast<size_t>(params.libm_functions));
  EXPECT_EQ(w.libl.members().size(), static_cast<size_t>(params.libl_functions));
  EXPECT_EQ(w.libcpp.members().size(), static_cast<size_t>(params.libcpp_functions));
  // libc = hand-written core + filler.
  EXPECT_GT(w.libc.members().size(), static_cast<size_t>(params.libc_filler));
  // codegen: one object per file + main.
  EXPECT_EQ(w.codegen_objs.size(), static_cast<size_t>(params.codegen_files) + 1);
}

TEST(WorkloadGen, OneFunctionPerLibraryObject) {
  ASSERT_OK_AND_ASSIGN(Workloads w, BuildWorkloads(SmallParams()));
  // Routine-level granularity is what makes §4.1 reordering possible.
  for (const ObjectFile& member : w.alpha1.members()) {
    int text_defs = 0;
    for (const Symbol& sym : member.symbols()) {
      if (sym.defined && sym.binding == SymbolBinding::kGlobal &&
          sym.section == SectionKind::kText) {
        ++text_defs;
      }
    }
    EXPECT_EQ(text_defs, 1) << member.name();
  }
}

TEST(WorkloadGen, LibcCoreProvidesSyscallWrappers) {
  ASSERT_OK_AND_ASSIGN(Workloads w, BuildWorkloads(SmallParams()));
  for (const char* fn : {"f_open", "f_read", "f_getdents", "f_stat", "print_str", "print_num",
                         "strlen", "strcmp", "path_join", "malloc"}) {
    EXPECT_NE(w.libc.FindDefiner(fn), nullptr) << fn;
  }
}

TEST(WorkloadGen, CodegenReferencesAllSixLibraries) {
  ASSERT_OK_AND_ASSIGN(Workloads w, BuildWorkloads(SmallParams()));
  std::vector<ObjectFile> objs = w.codegen_objs;
  objs.insert(objs.begin(), w.crt0);
  ASSERT_OK_AND_ASSIGN(Module m, ModuleFromObjects(objs));
  ASSERT_OK_AND_ASSIGN(auto unbound, m.UnboundRefNames());
  bool a1 = false;
  bool a2 = false;
  bool lm = false;
  bool ll = false;
  bool lc = false;
  bool libc = false;
  for (const std::string& name : unbound) {
    a1 |= StartsWith(name, "a1_");
    a2 |= StartsWith(name, "a2_");
    lm |= StartsWith(name, "m_");
    ll |= StartsWith(name, "l_");
    lc |= StartsWith(name, "C_");
    libc |= name == "f_open" || name == "print_num";
  }
  EXPECT_TRUE(a1 && a2 && lm && ll && lc && libc);
}

TEST(WorkloadGen, FsPopulationMatchesExpectedListing) {
  SimFs fs;
  PopulateLsData(fs, 5);
  std::string expected = ExpectedLsShortOutput(fs, "/data");
  EXPECT_NE(expected.find("file00.txt\n"), std::string::npos);
  EXPECT_NE(expected.find("subdir\n"), std::string::npos);
  EXPECT_EQ(std::count(expected.begin(), expected.end(), '\n'), 6);  // 5 files + subdir
  PopulateCodegenInputs(fs);
  EXPECT_TRUE(fs.Exists("/input/f0"));
  EXPECT_TRUE(fs.Exists("/input/f2"));
}

}  // namespace
}  // namespace omos
