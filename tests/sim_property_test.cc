// Differential testing of the interpreter: generate random straight-line
// ALU programs, predict the result with a host-side reference model, then
// assemble, link, execute and compare. Also cross-checks the assembler and
// linker along the way (the program goes through the full pipeline).
#include <array>
#include <sstream>

#include <gtest/gtest.h>

#include "src/support/strings.h"
#include "tests/helpers.h"

namespace omos {
namespace {

class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}
  uint32_t Next(uint32_t bound) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>((state_ >> 33) % bound);
  }

 private:
  uint64_t state_;
};

struct Machine {
  std::array<uint32_t, 8> regs{};  // r0..r7 modelled
};

// One random ALU instruction applied to both the reference model and the
// assembly stream. Division/modulo keep divisors nonzero.
void EmitRandomOp(Lcg& rng, Machine& model, std::ostringstream& text) {
  static const char* kOps[] = {"add", "sub", "mul", "and", "or", "xor", "shl", "shr",
                               "div", "mod", "movi", "addi", "mov"};
  const char* op = kOps[rng.Next(13)];
  uint8_t rd = static_cast<uint8_t>(rng.Next(8));
  uint8_t ra = static_cast<uint8_t>(rng.Next(8));
  uint8_t rb = static_cast<uint8_t>(rng.Next(8));
  uint32_t a = model.regs[ra];
  uint32_t b = model.regs[rb];
  std::string mnemonic(op);

  if (mnemonic == "movi") {
    uint32_t imm = rng.Next(100000);
    model.regs[rd] = imm;
    text << "  movi r" << int(rd) << ", " << imm << "\n";
    return;
  }
  if (mnemonic == "addi") {
    int32_t imm = static_cast<int32_t>(rng.Next(2000)) - 1000;
    model.regs[rd] = model.regs[ra] + static_cast<uint32_t>(imm);
    text << "  addi r" << int(rd) << ", r" << int(ra) << ", " << imm << "\n";
    return;
  }
  if (mnemonic == "mov") {
    model.regs[rd] = a;
    text << "  mov r" << int(rd) << ", r" << int(ra) << "\n";
    return;
  }
  if (mnemonic == "div" || mnemonic == "mod") {
    if (b == 0) {
      // Force a safe divisor first.
      uint32_t divisor = 1 + rng.Next(997);
      model.regs[rb] = divisor;
      text << "  movi r" << int(rb) << ", " << divisor << "\n";
      b = divisor;
      a = model.regs[ra];  // ra may alias rb
    }
    int32_t sa = static_cast<int32_t>(a);
    int32_t sb = static_cast<int32_t>(b);
    model.regs[rd] = static_cast<uint32_t>(mnemonic == "div" ? sa / sb : sa % sb);
    text << "  " << mnemonic << " r" << int(rd) << ", r" << int(ra) << ", r" << int(rb)
         << "\n";
    return;
  }
  uint32_t value = 0;
  if (mnemonic == "add") {
    value = a + b;
  } else if (mnemonic == "sub") {
    value = a - b;
  } else if (mnemonic == "mul") {
    value = a * b;
  } else if (mnemonic == "and") {
    value = a & b;
  } else if (mnemonic == "or") {
    value = a | b;
  } else if (mnemonic == "xor") {
    value = a ^ b;
  } else if (mnemonic == "shl") {
    value = a << (b & 31);
  } else {
    value = a >> (b & 31);
  }
  model.regs[rd] = value;
  text << "  " << mnemonic << " r" << int(rd) << ", r" << int(ra) << ", r" << int(rb) << "\n";
}

class RandomAluPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomAluPrograms, InterpreterMatchesReference) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 11);
  Machine model;
  std::ostringstream text;
  text << ".text\n.global _start\n_start:\n";
  // Seed registers with known values.
  for (int r = 0; r < 8; ++r) {
    uint32_t seed_value = rng.Next(1000) + 1;
    model.regs[static_cast<size_t>(r)] = seed_value;
    text << "  movi r" << r << ", " << seed_value << "\n";
  }
  int ops = 20 + static_cast<int>(rng.Next(60));
  for (int i = 0; i < ops; ++i) {
    EmitRandomOp(rng, model, text);
  }
  // Fold all modelled registers into r0 so any divergence shows.
  text << "  movi r0, 0\n";
  uint32_t expected = 0;
  for (int r = 1; r < 8; ++r) {
    text << "  xor r0, r0, r" << r << "\n";
    expected ^= model.regs[static_cast<size_t>(r)];
  }
  text << "  sys 0\n";

  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, text.str()));
  EXPECT_EQ(static_cast<uint32_t>(out.exit_code), expected) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAluPrograms, ::testing::Range(0, 24));

// Random memory traffic: scattered word stores then readback-sum, against a
// host model of the buffer.
class RandomMemoryPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomMemoryPrograms, LoadsAndStoresMatchReference) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 40503u + 7);
  constexpr int kWords = 32;
  std::array<uint32_t, kWords> model{};
  std::ostringstream text;
  text << ".text\n.global _start\n_start:\n  lea r7, buffer\n";
  int stores = 20 + static_cast<int>(rng.Next(30));
  for (int i = 0; i < stores; ++i) {
    uint32_t index = rng.Next(kWords);
    uint32_t value = rng.Next(1 << 30);
    model[index] = value;
    text << "  movi r1, " << value << "\n";
    text << "  st r1, [r7+" << index * 4 << "]\n";
  }
  uint32_t expected = 0;
  text << "  movi r0, 0\n";
  for (int i = 0; i < kWords; ++i) {
    text << "  ld r1, [r7+" << i * 4 << "]\n  xor r0, r0, r1\n";
    expected ^= model[static_cast<size_t>(i)];
  }
  text << "  sys 0\n.bss\n.align 4\nbuffer: .space " << kWords * 4 << "\n";

  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, text.str()));
  EXPECT_EQ(static_cast<uint32_t>(out.exit_code), expected) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMemoryPrograms, ::testing::Range(0, 12));

}  // namespace
}  // namespace omos
