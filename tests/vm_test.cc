// Unit tests for src/vm: physical frame refcounting, segment images,
// address spaces (mapping, protection, page-crossing access, accounting).
#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/phys_memory.h"
#include "tests/helpers.h"

namespace omos {
namespace {

TEST(PhysMemory, AllocateZeroedAndReuse) {
  PhysMemory phys;
  ASSERT_OK_AND_ASSIGN(FrameId a, phys.Allocate());
  phys.FrameData(a)[0] = 0xAB;
  EXPECT_EQ(phys.frames_in_use(), 1u);
  phys.Unref(a);
  EXPECT_EQ(phys.frames_in_use(), 0u);
  ASSERT_OK_AND_ASSIGN(FrameId b, phys.Allocate());
  EXPECT_EQ(b, a);  // frame recycled
  EXPECT_EQ(phys.FrameData(b)[0], 0);  // and zeroed
}

TEST(PhysMemory, RefCounting) {
  PhysMemory phys;
  ASSERT_OK_AND_ASSIGN(FrameId frame, phys.Allocate());
  phys.Ref(frame);
  phys.Ref(frame);
  EXPECT_EQ(phys.RefCount(frame), 3u);
  phys.Unref(frame);
  phys.Unref(frame);
  EXPECT_EQ(phys.frames_in_use(), 1u);
  phys.Unref(frame);
  EXPECT_EQ(phys.frames_in_use(), 0u);
}

TEST(PhysMemory, ExhaustionReported) {
  PhysMemory phys(2);
  ASSERT_OK(phys.Allocate());
  ASSERT_OK(phys.Allocate());
  auto third = phys.Allocate();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code(), ErrorCode::kOutOfRange);
}

TEST(PhysMemory, PeakTracking) {
  PhysMemory phys;
  ASSERT_OK_AND_ASSIGN(FrameId a, phys.Allocate());
  ASSERT_OK(phys.Allocate());
  phys.Unref(a);
  EXPECT_EQ(phys.peak_frames(), 2u);
  EXPECT_EQ(phys.frames_in_use(), 1u);
}

TEST(SegmentImage, HoldsDataPaddedToPages) {
  PhysMemory phys;
  std::vector<uint8_t> bytes(kPageSize + 100, 0x5A);
  ASSERT_OK_AND_ASSIGN(SegmentImage image, SegmentImage::Create(phys, bytes));
  EXPECT_EQ(image.num_pages(), 2u);
  EXPECT_EQ(image.size_bytes(), bytes.size());
  EXPECT_EQ(phys.frames_in_use(), 2u);
  EXPECT_EQ(phys.FrameData(image.frames()[1])[99], 0x5A);
  EXPECT_EQ(phys.FrameData(image.frames()[1])[100], 0);  // padding zeroed
}

TEST(SegmentImage, DestructorReleasesFrames) {
  PhysMemory phys;
  {
    std::vector<uint8_t> bytes(100, 1);
    ASSERT_OK_AND_ASSIGN(SegmentImage image, SegmentImage::Create(phys, bytes));
    EXPECT_EQ(phys.frames_in_use(), 1u);
  }
  EXPECT_EQ(phys.frames_in_use(), 0u);
}

TEST(SegmentImage, MoveTransfersOwnership) {
  PhysMemory phys;
  std::vector<uint8_t> bytes(100, 1);
  ASSERT_OK_AND_ASSIGN(SegmentImage a, SegmentImage::Create(phys, bytes));
  SegmentImage b = std::move(a);
  EXPECT_EQ(b.num_pages(), 1u);
  EXPECT_EQ(phys.frames_in_use(), 1u);
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysMemory phys_;
};

TEST_F(AddressSpaceTest, MapPrivateReadWrite) {
  AddressSpace space(phys_);
  std::vector<uint8_t> init = {1, 2, 3, 4};
  ASSERT_OK(space.MapPrivate(0x1000, 100, init, kProtRead | kProtWrite, "data"));
  ASSERT_OK_AND_ASSIGN(uint32_t word, space.Read32(0x1000));
  EXPECT_EQ(word, 0x04030201u);
  ASSERT_OK(space.Write32(0x1010, 0xAABBCCDD));
  ASSERT_OK_AND_ASSIGN(uint32_t back, space.Read32(0x1010));
  EXPECT_EQ(back, 0xAABBCCDDu);
}

TEST_F(AddressSpaceTest, SharedMappingSharesFrames) {
  std::vector<uint8_t> bytes(kPageSize, 0x7E);
  ASSERT_OK_AND_ASSIGN(SegmentImage image, SegmentImage::Create(phys_, bytes));
  AddressSpace a(phys_);
  AddressSpace b(phys_);
  ASSERT_OK(a.MapShared(0x10000, image, kProtRead | kProtExec, "text"));
  ASSERT_OK(b.MapShared(0x10000, image, kProtRead | kProtExec, "text"));
  // One physical frame, three references (image + two mappings).
  EXPECT_EQ(phys_.frames_in_use(), 1u);
  EXPECT_EQ(phys_.RefCount(image.frames()[0]), 3u);
  EXPECT_EQ(a.shared_pages(), 1u);
  EXPECT_EQ(a.private_pages(), 0u);
}

TEST_F(AddressSpaceTest, OverlapRejected) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize * 2, kProtRead, "a"));
  auto overlap = space.MapZero(0x2000, kPageSize, kProtRead, "b");
  ASSERT_FALSE(overlap.ok());
  EXPECT_EQ(overlap.error().code(), ErrorCode::kAlreadyExists);
  ASSERT_OK(space.MapZero(0x3000, kPageSize, kProtRead, "c"));
}

TEST_F(AddressSpaceTest, UnalignedBaseRejected) {
  AddressSpace space(phys_);
  auto result = space.MapZero(0x1234, kPageSize, kProtRead, "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(AddressSpaceTest, ProtectionEnforced) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead, "ro"));
  auto write = space.Write32(0x1000, 1);
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.error().code(), ErrorCode::kExecFault);
  auto fetch = space.FetchBytes(0x1000, nullptr, 0);  // zero-size ok anywhere
  (void)fetch;
  uint8_t buf[8];
  auto exec = space.FetchBytes(0x1000, buf, 8);
  ASSERT_FALSE(exec.ok());  // not executable
}

TEST_F(AddressSpaceTest, UnmappedAccessFaults) {
  AddressSpace space(phys_);
  auto result = space.Read32(0xDEAD0000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
}

TEST_F(AddressSpaceTest, PageCrossingAccess) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize * 2, kProtRead | kProtWrite, "span"));
  // Write 8 bytes straddling the page boundary.
  uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_OK(space.WriteBytes(0x1000 + kPageSize - 4, data, 8));
  uint8_t back[8] = {0};
  ASSERT_OK(space.ReadBytes(0x1000 + kPageSize - 4, back, 8));
  EXPECT_EQ(memcmp(data, back, 8), 0);
}

TEST_F(AddressSpaceTest, ReadCString) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead | kProtWrite, "s"));
  const char* msg = "hello";
  ASSERT_OK(space.WriteBytes(0x1000, msg, 6));
  ASSERT_OK_AND_ASSIGN(std::string s, space.ReadCString(0x1000));
  EXPECT_EQ(s, "hello");
  // Unterminated within limit fails.
  std::vector<uint8_t> noz(16, 'x');
  ASSERT_OK(space.WriteBytes(0x1100, noz.data(), 16));
  auto bad = space.ReadCString(0x1100, 8);
  ASSERT_FALSE(bad.ok());
}

TEST_F(AddressSpaceTest, UnmapReleasesFramesAndAllowsRemap) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead, "x"));
  EXPECT_EQ(phys_.frames_in_use(), 1u);
  ASSERT_OK(space.Unmap(0x1000));
  EXPECT_EQ(phys_.frames_in_use(), 0u);
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead, "y"));
  auto missing = space.Unmap(0x9000);
  ASSERT_FALSE(missing.ok());
}

TEST_F(AddressSpaceTest, DestructorReleasesEverything) {
  {
    AddressSpace space(phys_);
    ASSERT_OK(space.MapZero(0x1000, kPageSize * 3, kProtRead, "x"));
    EXPECT_EQ(phys_.frames_in_use(), 3u);
  }
  EXPECT_EQ(phys_.frames_in_use(), 0u);
}

TEST_F(AddressSpaceTest, RegionsListing) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x2000, kPageSize, kProtRead | kProtWrite, "data"));
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead | kProtExec, "text"));
  auto regions = space.Regions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].base, 0x1000u);  // sorted by base
  EXPECT_EQ(regions[0].name, "text");
  EXPECT_EQ(regions[1].name, "data");
}

TEST(PageAlign, Helpers) {
  EXPECT_EQ(PageAlignUp(0u), 0u);
  EXPECT_EQ(PageAlignUp(1u), kPageSize);
  EXPECT_EQ(PageAlignUp(kPageSize), kPageSize);
  EXPECT_EQ(PageAlignDown(kPageSize + 1), kPageSize);
}

}  // namespace
}  // namespace omos
