// Unit tests for src/vm: physical frame refcounting, segment images,
// address spaces (mapping, protection, page-crossing access, accounting).
#include <gtest/gtest.h>

#include "src/support/faultsim.h"
#include "src/vm/address_space.h"
#include "src/vm/phys_memory.h"
#include "tests/helpers.h"

namespace omos {
namespace {

TEST(PhysMemory, AllocateZeroedAndReuse) {
  PhysMemory phys;
  ASSERT_OK_AND_ASSIGN(FrameId a, phys.Allocate());
  phys.FrameData(a)[0] = 0xAB;
  EXPECT_EQ(phys.frames_in_use(), 1u);
  phys.Unref(a);
  EXPECT_EQ(phys.frames_in_use(), 0u);
  ASSERT_OK_AND_ASSIGN(FrameId b, phys.Allocate());
  EXPECT_EQ(b, a);  // frame recycled
  EXPECT_EQ(phys.FrameData(b)[0], 0);  // and zeroed
}

TEST(PhysMemory, RefCounting) {
  PhysMemory phys;
  ASSERT_OK_AND_ASSIGN(FrameId frame, phys.Allocate());
  phys.Ref(frame);
  phys.Ref(frame);
  EXPECT_EQ(phys.RefCount(frame), 3u);
  phys.Unref(frame);
  phys.Unref(frame);
  EXPECT_EQ(phys.frames_in_use(), 1u);
  phys.Unref(frame);
  EXPECT_EQ(phys.frames_in_use(), 0u);
}

TEST(PhysMemory, ExhaustionReported) {
  PhysMemory phys(2);
  ASSERT_OK(phys.Allocate());
  ASSERT_OK(phys.Allocate());
  auto third = phys.Allocate();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code(), ErrorCode::kOutOfRange);
}

TEST(PhysMemory, PeakTracking) {
  PhysMemory phys;
  ASSERT_OK_AND_ASSIGN(FrameId a, phys.Allocate());
  ASSERT_OK(phys.Allocate());
  phys.Unref(a);
  EXPECT_EQ(phys.peak_frames(), 2u);
  EXPECT_EQ(phys.frames_in_use(), 1u);
}

TEST(SegmentImage, HoldsDataPaddedToPages) {
  PhysMemory phys;
  std::vector<uint8_t> bytes(kPageSize + 100, 0x5A);
  ASSERT_OK_AND_ASSIGN(SegmentImage image, SegmentImage::Create(phys, bytes));
  EXPECT_EQ(image.num_pages(), 2u);
  EXPECT_EQ(image.size_bytes(), bytes.size());
  EXPECT_EQ(phys.frames_in_use(), 2u);
  EXPECT_EQ(phys.FrameData(image.frames()[1])[99], 0x5A);
  EXPECT_EQ(phys.FrameData(image.frames()[1])[100], 0);  // padding zeroed
}

TEST(SegmentImage, DestructorReleasesFrames) {
  PhysMemory phys;
  {
    std::vector<uint8_t> bytes(100, 1);
    ASSERT_OK_AND_ASSIGN(SegmentImage image, SegmentImage::Create(phys, bytes));
    EXPECT_EQ(phys.frames_in_use(), 1u);
  }
  EXPECT_EQ(phys.frames_in_use(), 0u);
}

TEST(SegmentImage, MoveTransfersOwnership) {
  PhysMemory phys;
  std::vector<uint8_t> bytes(100, 1);
  ASSERT_OK_AND_ASSIGN(SegmentImage a, SegmentImage::Create(phys, bytes));
  SegmentImage b = std::move(a);
  EXPECT_EQ(b.num_pages(), 1u);
  EXPECT_EQ(phys.frames_in_use(), 1u);
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysMemory phys_;
};

TEST_F(AddressSpaceTest, MapPrivateReadWrite) {
  AddressSpace space(phys_);
  std::vector<uint8_t> init = {1, 2, 3, 4};
  ASSERT_OK(space.MapPrivate(0x1000, 100, init, kProtRead | kProtWrite, "data"));
  ASSERT_OK_AND_ASSIGN(uint32_t word, space.Read32(0x1000));
  EXPECT_EQ(word, 0x04030201u);
  ASSERT_OK(space.Write32(0x1010, 0xAABBCCDD));
  ASSERT_OK_AND_ASSIGN(uint32_t back, space.Read32(0x1010));
  EXPECT_EQ(back, 0xAABBCCDDu);
}

TEST_F(AddressSpaceTest, SharedMappingSharesFrames) {
  std::vector<uint8_t> bytes(kPageSize, 0x7E);
  ASSERT_OK_AND_ASSIGN(SegmentImage image, SegmentImage::Create(phys_, bytes));
  AddressSpace a(phys_);
  AddressSpace b(phys_);
  ASSERT_OK(a.MapShared(0x10000, image, kProtRead | kProtExec, "text"));
  ASSERT_OK(b.MapShared(0x10000, image, kProtRead | kProtExec, "text"));
  // One physical frame, three references (image + two mappings).
  EXPECT_EQ(phys_.frames_in_use(), 1u);
  EXPECT_EQ(phys_.RefCount(image.frames()[0]), 3u);
  EXPECT_EQ(a.shared_pages(), 1u);
  EXPECT_EQ(a.private_pages(), 0u);
}

TEST_F(AddressSpaceTest, OverlapRejected) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize * 2, kProtRead, "a"));
  auto overlap = space.MapZero(0x2000, kPageSize, kProtRead, "b");
  ASSERT_FALSE(overlap.ok());
  EXPECT_EQ(overlap.error().code(), ErrorCode::kAlreadyExists);
  ASSERT_OK(space.MapZero(0x3000, kPageSize, kProtRead, "c"));
}

TEST_F(AddressSpaceTest, UnalignedBaseRejected) {
  AddressSpace space(phys_);
  auto result = space.MapZero(0x1234, kPageSize, kProtRead, "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(AddressSpaceTest, ProtectionEnforced) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead, "ro"));
  auto write = space.Write32(0x1000, 1);
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.error().code(), ErrorCode::kExecFault);
  auto fetch = space.FetchBytes(0x1000, nullptr, 0);  // zero-size ok anywhere
  (void)fetch;
  uint8_t buf[8];
  auto exec = space.FetchBytes(0x1000, buf, 8);
  ASSERT_FALSE(exec.ok());  // not executable
}

TEST_F(AddressSpaceTest, UnmappedAccessFaults) {
  AddressSpace space(phys_);
  auto result = space.Read32(0xDEAD0000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
}

TEST_F(AddressSpaceTest, PageCrossingAccess) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize * 2, kProtRead | kProtWrite, "span"));
  // Write 8 bytes straddling the page boundary.
  uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_OK(space.WriteBytes(0x1000 + kPageSize - 4, data, 8));
  uint8_t back[8] = {0};
  ASSERT_OK(space.ReadBytes(0x1000 + kPageSize - 4, back, 8));
  EXPECT_EQ(memcmp(data, back, 8), 0);
}

TEST_F(AddressSpaceTest, ReadCString) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead | kProtWrite, "s"));
  const char* msg = "hello";
  ASSERT_OK(space.WriteBytes(0x1000, msg, 6));
  ASSERT_OK_AND_ASSIGN(std::string s, space.ReadCString(0x1000));
  EXPECT_EQ(s, "hello");
  // Unterminated within limit fails.
  std::vector<uint8_t> noz(16, 'x');
  ASSERT_OK(space.WriteBytes(0x1100, noz.data(), 16));
  auto bad = space.ReadCString(0x1100, 8);
  ASSERT_FALSE(bad.ok());
}

TEST_F(AddressSpaceTest, UnmapReleasesFramesAndAllowsRemap) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead, "x"));
  // MapZero is demand-paged: no frame until first touch.
  EXPECT_EQ(phys_.frames_in_use(), 0u);
  ASSERT_OK(space.Read8(0x1000));
  EXPECT_EQ(phys_.frames_in_use(), 1u);
  ASSERT_OK(space.Unmap(0x1000));
  EXPECT_EQ(phys_.frames_in_use(), 0u);
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead, "y"));
  auto missing = space.Unmap(0x9000);
  ASSERT_FALSE(missing.ok());
}

TEST_F(AddressSpaceTest, DestructorReleasesEverything) {
  {
    AddressSpace space(phys_);
    ASSERT_OK(space.MapZero(0x1000, kPageSize * 3, kProtRead | kProtWrite, "x"));
    EXPECT_EQ(phys_.frames_in_use(), 0u);  // all three pages are demand-zero
    ASSERT_OK(space.Write8(0x1000, 1));    // touch two of the three
    ASSERT_OK(space.Write8(0x3000, 2));
    EXPECT_EQ(phys_.frames_in_use(), 2u);
  }
  EXPECT_EQ(phys_.frames_in_use(), 0u);
}

TEST_F(AddressSpaceTest, RegionsListing) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapZero(0x2000, kPageSize, kProtRead | kProtWrite, "data"));
  ASSERT_OK(space.MapZero(0x1000, kPageSize, kProtRead | kProtExec, "text"));
  auto regions = space.Regions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].base, 0x1000u);  // sorted by base
  EXPECT_EQ(regions[0].name, "text");
  EXPECT_EQ(regions[1].name, "data");
}

TEST(PageAlign, Helpers) {
  EXPECT_EQ(PageAlignUp(0u), 0u);
  EXPECT_EQ(PageAlignUp(1u), kPageSize);
  EXPECT_EQ(PageAlignUp(kPageSize), kPageSize);
  EXPECT_EQ(PageAlignDown(kPageSize + 1), kPageSize);
}

TEST(PhysMemory, AllocateUninitSkipsZeroing) {
  PhysMemory phys;
  ASSERT_OK_AND_ASSIGN(FrameId a, phys.Allocate());
  phys.FrameData(a)[7] = 0xCD;
  phys.Unref(a);
  // Recycled uninit frame keeps its dirty contents (callers overwrite it).
  ASSERT_OK_AND_ASSIGN(FrameId b, phys.AllocateUninit());
  EXPECT_EQ(b, a);
  EXPECT_EQ(phys.FrameData(b)[7], 0xCD);
  phys.Unref(b);
  // A zeroed allocation of the same recycled frame really is zeroed.
  ASSERT_OK_AND_ASSIGN(FrameId c, phys.Allocate());
  EXPECT_EQ(c, a);
  EXPECT_EQ(phys.FrameData(c)[7], 0);
}

// ---- Copy-on-write / demand paging ------------------------------------------

class CowTest : public ::testing::Test {
 protected:
  // A two-page master with distinctive bytes in each page.
  Result<SegmentImage> MakeMaster() {
    std::vector<uint8_t> bytes(2 * kPageSize);
    for (size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<uint8_t>(i / kPageSize == 0 ? 0x11 : 0x22);
    }
    return SegmentImage::Create(phys_, bytes);
  }
  PhysMemory phys_;
};

TEST_F(CowTest, MapCowSharesFramesUntilWrite) {
  ASSERT_OK_AND_ASSIGN(SegmentImage master, MakeMaster());
  uint32_t baseline = phys_.frames_in_use();
  AddressSpace a(phys_);
  AddressSpace b(phys_);
  ASSERT_OK(a.MapCoW(0x1000, master, 2 * kPageSize, kProtRead | kProtWrite, "data"));
  ASSERT_OK(b.MapCoW(0x1000, master, 2 * kPageSize, kProtRead | kProtWrite, "data"));
  // Mapping allocates nothing: both spaces reference the master's frames.
  EXPECT_EQ(phys_.frames_in_use(), baseline);
  EXPECT_EQ(a.shared_pages(), 2u);
  EXPECT_EQ(a.private_pages(), 0u);
  // Reads see the master bytes and don't break sharing.
  ASSERT_OK_AND_ASSIGN(uint8_t byte, a.Read8(0x1000));
  EXPECT_EQ(byte, 0x11);
  EXPECT_EQ(phys_.frames_in_use(), baseline);

  // One space writes one page: only that page is privatized, only there.
  ASSERT_OK(a.Write8(0x1005, 0xEE));
  EXPECT_EQ(phys_.frames_in_use(), baseline + 1);
  EXPECT_EQ(a.shared_pages(), 1u);
  EXPECT_EQ(a.private_pages(), 1u);
  ASSERT_OK_AND_ASSIGN(uint8_t changed, a.Read8(0x1005));
  EXPECT_EQ(changed, 0xEE);
  // Copy carried the rest of the page.
  ASSERT_OK_AND_ASSIGN(uint8_t carried, a.Read8(0x1006));
  EXPECT_EQ(carried, 0x11);
  // The other task's view and the master itself are byte-unchanged.
  ASSERT_OK_AND_ASSIGN(uint8_t other, b.Read8(0x1005));
  EXPECT_EQ(other, 0x11);
  EXPECT_EQ(phys_.FrameData(master.frames()[0])[5], 0x11);
  EXPECT_EQ(b.shared_pages(), 2u);
}

TEST_F(CowTest, FrameRefcountsReturnToBaselineAfterExit) {
  ASSERT_OK_AND_ASSIGN(SegmentImage master, MakeMaster());
  uint32_t baseline = phys_.frames_in_use();
  uint32_t ref0 = phys_.RefCount(master.frames()[0]);
  {
    AddressSpace a(phys_);
    AddressSpace b(phys_);
    ASSERT_OK(a.MapCoW(0x1000, master, 2 * kPageSize, kProtRead | kProtWrite, "data"));
    ASSERT_OK(b.MapCoW(0x1000, master, 2 * kPageSize, kProtRead | kProtWrite, "data"));
    ASSERT_OK(a.Write8(0x1000, 1));
    ASSERT_OK(b.Write8(0x2000, 2));
    EXPECT_EQ(phys_.RefCount(master.frames()[0]), ref0 + 1);  // a broke page 0
  }
  EXPECT_EQ(phys_.frames_in_use(), baseline);
  EXPECT_EQ(phys_.RefCount(master.frames()[0]), ref0);
  EXPECT_EQ(phys_.RefCount(master.frames()[1]), ref0);
}

TEST_F(CowTest, LastOwnerAdoptsFrameWithoutCopy) {
  AddressSpace space(phys_);
  {
    ASSERT_OK_AND_ASSIGN(SegmentImage master, MakeMaster());
    ASSERT_OK(space.MapCoW(0x1000, master, 2 * kPageSize, kProtRead | kProtWrite, "data"));
    // master goes out of scope: the space becomes the frames' sole owner.
  }
  uint32_t before = phys_.frames_in_use();
  uint64_t allocs = phys_.total_allocations();
  ASSERT_OK(space.Write8(0x1000, 0x33));
  // Adopted in place: no new frame, no copy.
  EXPECT_EQ(phys_.frames_in_use(), before);
  EXPECT_EQ(phys_.total_allocations(), allocs);
  EXPECT_EQ(space.private_pages(), 1u);
  ASSERT_OK_AND_ASSIGN(uint8_t byte, space.Read8(0x1000));
  EXPECT_EQ(byte, 0x33);
}

TEST_F(CowTest, CowRegionTailIsDemandZeroBss) {
  ASSERT_OK_AND_ASSIGN(SegmentImage master, MakeMaster());
  AddressSpace space(phys_);
  // Two master pages + two pages of bss in one region.
  ASSERT_OK(space.MapCoW(0x1000, master, 4 * kPageSize, kProtRead | kProtWrite, "data"));
  EXPECT_EQ(space.shared_pages(), 2u);
  EXPECT_EQ(space.demand_pages(), 2u);
  uint32_t before = phys_.frames_in_use();
  ASSERT_OK_AND_ASSIGN(uint8_t bss_byte, space.Read8(0x3000));
  EXPECT_EQ(bss_byte, 0);
  EXPECT_EQ(phys_.frames_in_use(), before + 1);
  EXPECT_EQ(space.demand_pages(), 1u);
  EXPECT_EQ(space.private_pages(), 1u);
}

TEST_F(CowTest, DemandZeroAllocatesOnlyTouchedPages) {
  AddressSpace space(phys_);
  ASSERT_OK(space.MapDemandZero(0x1000, 8 * kPageSize, kProtRead | kProtWrite, "bss"));
  EXPECT_EQ(phys_.frames_in_use(), 0u);
  EXPECT_EQ(space.demand_pages(), 8u);
  ASSERT_OK(space.Write8(0x4000, 9));
  ASSERT_OK(space.Write8(0x4FFF, 9));  // same page: one frame
  EXPECT_EQ(phys_.frames_in_use(), 1u);
  EXPECT_EQ(space.demand_pages(), 7u);
  // A write crossing a page boundary faults both pages in.
  uint8_t two[2] = {1, 2};
  ASSERT_OK(space.WriteBytes(0x1FFF, two, 2));
  EXPECT_EQ(phys_.frames_in_use(), 3u);
}

TEST_F(CowTest, FaultHandlerInterposes) {
  ASSERT_OK_AND_ASSIGN(SegmentImage master, MakeMaster());
  AddressSpace space(phys_);
  ASSERT_OK(space.MapCoW(0x1000, master, 3 * kPageSize, kProtRead | kProtWrite, "data"));
  int faults = 0;
  bool saw_write = false;
  space.SetFaultHandler([&](const PageFaultInfo& info) -> Result<void> {
    ++faults;
    saw_write = info.is_write;
    OMOS_TRY_VOID(space.HandleFault(info.addr, info.is_write));
    return OkResult();
  });
  ASSERT_OK(space.Write8(0x1000, 1));  // CoW break
  EXPECT_EQ(faults, 1);
  EXPECT_TRUE(saw_write);
  ASSERT_OK(space.Read8(0x3000));  // demand-zero fill
  EXPECT_EQ(faults, 2);
  EXPECT_FALSE(saw_write);
  ASSERT_OK(space.Read8(0x1000));  // present page: no fault
  EXPECT_EQ(faults, 2);
}

TEST_F(CowTest, InjectedFaultDuringResolutionLeaksNothing) {
  ASSERT_OK_AND_ASSIGN(SegmentImage master, MakeMaster());
  uint32_t baseline = phys_.frames_in_use();
  {
    AddressSpace space(phys_);
    ASSERT_OK(space.MapCoW(0x1000, master, 4 * kPageSize, kProtRead | kProtWrite, "data"));
    ScopedFaultPlan plan(FaultPlan().Arm("vm.fault", FaultSpec::Nth(1)));
    // First fault (CoW break) fails; the page stays shared and untouched.
    auto broken = space.Write8(0x1000, 1);
    ASSERT_FALSE(broken.ok());
    EXPECT_EQ(phys_.frames_in_use(), baseline);
    EXPECT_EQ(space.shared_pages(), 2u);
    EXPECT_EQ(phys_.FrameData(master.frames()[0])[0], 0x11);
    // The plan is spent; a retry of the same write succeeds.
    ASSERT_OK(space.Write8(0x1000, 1));
    EXPECT_EQ(phys_.frames_in_use(), baseline + 1);
  }
  EXPECT_EQ(phys_.frames_in_use(), baseline);
}

TEST_F(CowTest, SeededFaultSweepBalancesFrames) {
  // Probabilistic faults over a write-heavy workload: whatever subset of
  // demand fills and CoW breaks fails, teardown must return the pool to
  // baseline — no leaked or double-freed frames.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ASSERT_OK_AND_ASSIGN(SegmentImage master, MakeMaster());
    uint32_t baseline = phys_.frames_in_use();
    {
      AddressSpace a(phys_);
      AddressSpace b(phys_);
      ASSERT_OK(a.MapCoW(0x1000, master, 4 * kPageSize, kProtRead | kProtWrite, "data"));
      ASSERT_OK(b.MapCoW(0x1000, master, 4 * kPageSize, kProtRead | kProtWrite, "data"));
      ScopedFaultPlan plan(FaultPlan().Arm("vm.fault", FaultSpec::Prob(0.4, seed)));
      for (uint32_t page = 0; page < 4; ++page) {
        // Ignore injected failures; retry once (may fail again — fine).
        (void)a.Write8(0x1000 + page * kPageSize, 0xA0);
        (void)a.Write8(0x1000 + page * kPageSize, 0xA1);
        (void)b.Write8(0x1000 + page * kPageSize, 0xB0);
      }
      // Master bytes never change regardless of which faults fired.
      EXPECT_EQ(phys_.FrameData(master.frames()[0])[0], 0x11);
      EXPECT_EQ(phys_.FrameData(master.frames()[1])[0], 0x22);
    }
    EXPECT_EQ(phys_.frames_in_use(), baseline) << "seed " << seed;
  }
}

}  // namespace
}  // namespace omos
