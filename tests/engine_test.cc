// Tests for the predecoded block execution engine (src/engine/): the
// differential suite runs the same programs under the legacy CpuStep
// interpreter and the block engine and requires every simulated observable
// — final registers, pc, cycles, retired counts, output, fault identity,
// profiler sample stream — to be byte-identical; the fault sweeps prove
// mid-block CoW/demand-zero faults leave precise state; the invalidation
// and concurrency tests (TSan-covered) prove redefinition and live-upgrade
// repoint invalidate cached blocks without stale-code execution or frame
// use-after-free.
#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/server.h"
#include "src/engine/engine.h"
#include "src/support/faultsim.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"
#include "src/upgrade/upgrade.h"
#include "tests/helpers.h"

namespace omos {
namespace {

// ---- Differential harness ---------------------------------------------------

// Every simulated observable of one run: how it ended, the final machine
// state, the accounting, and the console output. Two engines agree iff all
// fields match.
struct Observed {
  std::string run_status;  // "ok" or RunTask's error string (budget, fault)
  int state = 0;
  int exit_code = 0;
  uint32_t pc = 0;
  std::array<uint32_t, kNumRegisters> regs{};
  uint64_t user_cycles = 0;
  uint64_t sys_cycles = 0;
  uint64_t retired = 0;
  std::string output;
  std::string fault;
  uint64_t vm_hits = 0;   // FaultSim vm.fault hit count (0 unless a plan is armed)
  uint64_t vm_fires = 0;
};

struct EngineWorld {
  std::unique_ptr<Kernel> kernel;
  Task* task = nullptr;
};

Result<EngineWorld> SetupWorld(EngineMode mode, const std::string& source) {
  EngineWorld w;
  w.kernel = std::make_unique<Kernel>();
  w.kernel->SetEngineMode(mode);
  OMOS_TRY(ObjectFile object, Assemble(source, "engine.o"));
  Module module = Module::FromObject(std::make_shared<const ObjectFile>(std::move(object)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  OMOS_TRY(LinkedImage image, LinkImage(module, layout, "engine"));
  w.task = &w.kernel->CreateTask("engine");
  OMOS_TRY_VOID(MapLinkedImage(*w.kernel, *w.task, image, ""));
  std::vector<std::string> args{"engine"};
  OMOS_TRY_VOID(StartTask(*w.kernel, *w.task, image.entry, args));
  return w;
}

Observed Capture(EngineWorld& w, const Result<void>& run) {
  Observed o;
  o.run_status = run.ok() ? "ok" : run.error().ToString();
  o.state = static_cast<int>(w.task->state());
  o.exit_code = w.task->exit_code();
  o.pc = w.task->pc();
  for (int i = 0; i < kNumRegisters; ++i) {
    o.regs[static_cast<size_t>(i)] = w.task->reg(i);
  }
  o.user_cycles = w.task->user_cycles();
  o.sys_cycles = w.task->sys_cycles();
  o.retired = w.task->instructions_retired();
  o.output = w.task->output();
  o.fault = w.task->fault() ? w.task->fault()->ToString() : "";
  return o;
}

Result<Observed> RunUnder(EngineMode mode, const std::string& source,
                          uint64_t budget = 200'000'000) {
  OMOS_TRY(EngineWorld w, SetupWorld(mode, source));
  Result<void> run = w.kernel->RunTask(*w.task, budget);
  return Capture(w, run);
}

// Runs with a vm.fault plan armed only around execution (not setup), so the
// fault schedule is identical for both engines.
Result<Observed> RunWithFaultPlan(EngineMode mode, const std::string& source, FaultSpec spec) {
  OMOS_TRY(EngineWorld w, SetupWorld(mode, source));
  Observed o;
  {
    ScopedFaultPlan plan(FaultPlan().Arm("vm.fault", spec));
    Result<void> run = w.kernel->RunTask(*w.task, 200'000'000);
    o = Capture(w, run);
    o.vm_hits = FaultSim::Hits("vm.fault");
    o.vm_fires = FaultSim::Fires("vm.fault");
  }
  return o;
}

void ExpectSame(const Observed& interp, const Observed& blocks, const std::string& label) {
  EXPECT_EQ(interp.run_status, blocks.run_status) << label;
  EXPECT_EQ(interp.state, blocks.state) << label;
  EXPECT_EQ(interp.exit_code, blocks.exit_code) << label;
  EXPECT_EQ(interp.pc, blocks.pc) << label;
  for (int i = 0; i < kNumRegisters; ++i) {
    EXPECT_EQ(interp.regs[static_cast<size_t>(i)], blocks.regs[static_cast<size_t>(i)])
        << label << " r" << i;
  }
  EXPECT_EQ(interp.user_cycles, blocks.user_cycles) << label;
  EXPECT_EQ(interp.sys_cycles, blocks.sys_cycles) << label;
  EXPECT_EQ(interp.retired, blocks.retired) << label;
  EXPECT_EQ(interp.output, blocks.output) << label;
  EXPECT_EQ(interp.fault, blocks.fault) << label;
  EXPECT_EQ(interp.vm_hits, blocks.vm_hits) << label;
  EXPECT_EQ(interp.vm_fires, blocks.vm_fires) << label;
}

void ExpectEnginesAgree(const std::string& source, uint64_t budget = 200'000'000) {
  ASSERT_OK_AND_ASSIGN(Observed interp, RunUnder(EngineMode::kInterp, source, budget));
  ASSERT_OK_AND_ASSIGN(Observed blocks, RunUnder(EngineMode::kBlocks, source, budget));
  ExpectSame(interp, blocks, StrCat("budget ", budget));
}

// ---- Differential suite -----------------------------------------------------

TEST(EngineDifferential, AluMix) {
  ExpectEnginesAgree(R"(
.text
.global _start
_start:
  movi r4, 0
  movi r5, 37
  movi r6, 0x1234
  movi r7, 7
loop:
  add r1, r1, r6
  sub r2, r1, r4
  mul r3, r2, r6
  div r8, r3, r7
  mod r9, r3, r7
  and r10, r8, r9
  or r11, r8, r9
  xor r12, r11, r10
  shl r1, r12, r7
  shr r2, r12, r7
  addi r4, r4, 1
  blt r4, r5, loop
  mov r0, r12
  sys 0
)");
}

TEST(EngineDifferential, MemoryMix) {
  ExpectEnginesAgree(R"(
.text
.global _start
_start:
  movi r4, 0
  movi r5, 24
  movi r7, 7
  movi r8, 2
loop:
  lea r1, table
  and r2, r4, r7
  shl r2, r2, r8
  add r1, r1, r2
  ld r3, [r1+0]
  addi r3, r3, 5
  st r3, [r1+0]
  ldb r6, [r1+1]
  stb r6, [r1+2]
  addi r4, r4, 1
  blt r4, r5, loop
  ld r0, [r1+0]
  sys 0
.data
.align 4
table:
  .word 1
  .word 2
  .word 3
  .word 4
  .word 5
  .word 6
  .word 7
  .word 8
)");
}

TEST(EngineDifferential, BranchesAndCalls) {
  ExpectEnginesAgree(R"(
.text
.global _start
_start:
  movi r4, 0
  movi r5, 12
loop:
  mov r0, r4
  call twist
  add r6, r6, r0
  addi r4, r4, 1
  bne r4, r5, loop
  mov r0, r6
  sys 0
twist:
  push lr
  push r4
  movi r1, 5
  blt r0, r1, small
  movi r2, 9
  bgeu r0, r2, big
  lea r3, add3
  callr r3
  br join
small:
  call add10
  br join
big:
  movi r3, 4
  bltu r0, r3, join
  bge r0, r1, viajmp
viajmp:
  jmp add3_tail
join:
  pop r4
  pop lr
  ret
add3:
add3_tail:
  addi r0, r0, 3
  beq r0, r0, back
back:
  ret
add10:
  addi r0, r0, 10
  ret
)");
}

TEST(EngineDifferential, PcRelativeForms) {
  ExpectEnginesAgree(R"(
.text
.global _start
_start:
  ldpc r1, value
  leapc r2, value
  ld r3, [r2+0]
  add r0, r1, r3
  callpc bump
  lea r4, fin
  jmpr r4
bump:
  addi r0, r0, 1
  ret
fin:
  sys 0
.data
.align 4
value: .word 20
)");
}

TEST(EngineDifferential, SyscallOutput) {
  ExpectEnginesAgree(R"(
.text
.global _start
_start:
  movi r4, 0
  movi r5, 9
loop:
  movi r0, 1
  lea r1, msg
  movi r2, 3
  sys 1
  addi r4, r4, 1
  blt r4, r5, loop
  movi r0, 7
  sys 0
.data
msg: .asciiz "ab\n"
)");
}

TEST(EngineDifferential, DivideByZeroFaultIsIdentical) {
  // The fault is mid-block: three straight-line instructions precede it.
  ExpectEnginesAgree(R"(
.text
.global _start
_start:
  movi r1, 7
  movi r2, 0
  add r3, r1, r1
  div r0, r3, r2
  sys 0
)");
  ExpectEnginesAgree(R"(
.text
.global _start
_start:
  movi r1, 7
  movi r2, 0
  add r3, r1, r1
  mod r0, r3, r2
  sys 0
)");
}

TEST(EngineDifferential, FetchFromNonExecPageFaultIsIdentical) {
  // Jumping into the data segment makes the instruction fetch itself fail;
  // the engine's block-probe path must surface the same error as CpuStep.
  ExpectEnginesAgree(R"(
.text
.global _start
_start:
  lea r1, blob
  jmpr r1
.data
.align 4
blob: .word 0x11111111
)");
}

// Instruction budgets must stop both engines at exactly the same
// instruction boundary — mid-block for the block engine — with identical
// machine state, including budgets that land inside the loop body.
TEST(EngineDifferential, BudgetStopsAreExact) {
  const std::string spin = R"(
.text
.global _start
_start:
  movi r4, 0
loop:
  addi r4, r4, 1
  xor r5, r4, r6
  add r6, r5, r4
  mul r7, r6, r4
  br loop
)";
  for (uint64_t budget = 1; budget <= 48; ++budget) {
    ASSERT_OK_AND_ASSIGN(Observed interp, RunUnder(EngineMode::kInterp, spin, budget));
    ASSERT_OK_AND_ASSIGN(Observed blocks, RunUnder(EngineMode::kBlocks, spin, budget));
    ASSERT_NE(interp.run_status, "ok") << "budget " << budget;
    EXPECT_NE(interp.run_status.find("exceeded instruction budget"), std::string::npos);
    ExpectSame(interp, blocks, StrCat("budget ", budget));
    EXPECT_EQ(blocks.retired, budget);
  }
}

// ---- Seeded vm.fault sweeps -------------------------------------------------

// The loop body mixes demand-zero fills (a walk down the unmapped stack
// pages) with a CoW break (first store to the data page), all mid-block.
constexpr char kFaultyProgram[] = R"(
.text
.global _start
_start:
  movi r4, 0
  movi r5, 6
  mov r6, r13
loop:
  addi r6, r6, -4096
  st r4, [r6+0]
  lea r1, word
  ld r2, [r1+0]
  add r2, r2, r4
  st r2, [r1+0]
  addi r4, r4, 1
  blt r4, r5, loop
  ld r0, [r1+0]
  sys 0
.data
.align 4
word: .word 3
)";

TEST(EngineFaultSweep, NthFaultLeavesPreciseStateInBothEngines) {
  // k sweeps past the total number of fault resolutions (the last k values
  // fire nothing and the run completes), so both the faulted and clean
  // paths are compared. On a fire the store fails mid-block: the task must
  // be left at exactly the state the legacy interpreter produces.
  bool saw_fault = false;
  bool saw_clean = false;
  for (uint64_t k = 1; k <= 9; ++k) {
    ASSERT_OK_AND_ASSIGN(Observed interp,
                         RunWithFaultPlan(EngineMode::kInterp, kFaultyProgram, FaultSpec::Nth(k)));
    ASSERT_OK_AND_ASSIGN(Observed blocks,
                         RunWithFaultPlan(EngineMode::kBlocks, kFaultyProgram, FaultSpec::Nth(k)));
    ExpectSame(interp, blocks, StrCat("nth ", k));
    if (blocks.vm_fires > 0) {
      saw_fault = true;
      EXPECT_EQ(blocks.state, static_cast<int>(TaskState::kFaulted)) << "nth " << k;
      EXPECT_FALSE(blocks.fault.empty()) << "nth " << k;
    } else {
      saw_clean = true;
      EXPECT_EQ(blocks.state, static_cast<int>(TaskState::kExited)) << "nth " << k;
      EXPECT_EQ(blocks.run_status, "ok") << "nth " << k;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_clean);
}

TEST(EngineFaultSweep, SeededProbabilisticParity) {
  // Every seed yields one deterministic fault schedule; both engines must
  // hit the sites in the same order and count, so the schedules — and the
  // resulting final states — are identical.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ASSERT_OK_AND_ASSIGN(
        Observed interp,
        RunWithFaultPlan(EngineMode::kInterp, kFaultyProgram, FaultSpec::Prob(0.4, seed)));
    ASSERT_OK_AND_ASSIGN(
        Observed blocks,
        RunWithFaultPlan(EngineMode::kBlocks, kFaultyProgram, FaultSpec::Prob(0.4, seed)));
    ExpectSame(interp, blocks, StrCat("seed ", seed));
  }
}

// ---- Profiler attribution ---------------------------------------------------

// Same convention in both engines (see the note in src/os/cpu.cc): a sample
// records the PRE-execution pc of the retiring instruction. The full sample
// stream must match, not just the histogram.
TEST(EngineProfiler, SampleStreamsAreIdentical) {
  const std::string prog = R"(
.text
.global _start
_start:
  movi r4, 0
  movi r5, 800
loop:
  add r6, r6, r4
  xor r7, r6, r5
  call leaf
  addi r4, r4, 1
  blt r4, r5, loop
  movi r0, 0
  sys 0
leaf:
  addi r7, r7, 1
  ret
)";
  std::vector<CycleProfiler::Sample> streams[2];
  const EngineMode modes[2] = {EngineMode::kInterp, EngineMode::kBlocks};
  for (int i = 0; i < 2; ++i) {
    CycleProfiler::Clear();
    CycleProfiler::Start(16);
    ASSERT_OK_AND_ASSIGN(EngineWorld w, SetupWorld(modes[i], prog));
    ASSERT_OK(w.kernel->RunTask(*w.task));
    CycleProfiler::Stop();
    streams[i] = CycleProfiler::Samples();
  }
  ASSERT_GT(streams[0].size(), 10u);
  ASSERT_EQ(streams[0].size(), streams[1].size());
  for (size_t i = 0; i < streams[0].size(); ++i) {
    EXPECT_EQ(streams[0][i].task_id, streams[1][i].task_id) << "sample " << i;
    EXPECT_EQ(streams[0][i].pc, streams[1][i].pc) << "sample " << i;
  }
}

// ---- Cache behavior and metrics ---------------------------------------------

constexpr char kLoopProgram[] = R"(
.text
.global _start
_start:
  movi r4, 0
  movi r5, 5000
loop:
  add r6, r6, r4
  lea r1, word
  ld r2, [r1+0]
  addi r4, r4, 1
  blt r4, r5, loop
  movi r0, 0
  sys 0
.data
.align 4
word: .word 1
)";

TEST(EngineCache, CountersAdvanceAndInvalidateAllDropsBlocks) {
  EngineMetrics& em = GetEngineMetrics();
  uint64_t decoded0 = em.blocks_decoded->value();
  uint64_t hits0 = em.block_hits->value();
  uint64_t tlb_hits0 = em.tlb_hits->value();
  uint64_t inval0 = em.invalidations->value();

  Kernel kernel;
  kernel.SetEngineMode(EngineMode::kBlocks);
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, kLoopProgram));
  EXPECT_EQ(out.exit_code, 0);

  EXPECT_GT(kernel.engine().CachedBlocks(), 0u);
  EXPECT_GT(em.blocks_decoded->value(), decoded0);
  EXPECT_GT(em.block_hits->value(), hits0);       // the loop re-enters its block
  EXPECT_GT(em.tlb_hits->value(), tlb_hits0);     // ld hits the software TLB

  uint64_t epoch_before = kernel.engine().epoch();
  kernel.engine().InvalidateAll("test");
  EXPECT_EQ(kernel.engine().CachedBlocks(), 0u);
  EXPECT_GT(kernel.engine().epoch(), epoch_before);
  EXPECT_GT(em.invalidations->value(), inval0);
}

TEST(EngineCache, BlocksAreSharedAcrossTasksMappingTheSameFrames) {
  // Two tasks mapping the same page-cached text share physical frames, so
  // the second run must decode zero new blocks — the predecode cache is
  // keyed by physical identity, the paper's "shared text, shared decode".
  Kernel kernel;
  kernel.SetEngineMode(EngineMode::kBlocks);
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(kLoopProgram, "shared.o"));
  Module module = Module::FromObject(std::make_shared<const ObjectFile>(std::move(object)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(module, layout, "shared"));

  EngineMetrics& em = GetEngineMetrics();
  uint64_t decoded_before_first = em.blocks_decoded->value();
  for (int i = 0; i < 2; ++i) {
    Task& task = kernel.CreateTask(StrCat("shared", i));
    ASSERT_OK(MapLinkedImage(kernel, task, image, "pagecache:shared"));
    std::vector<std::string> args{"shared"};
    ASSERT_OK(StartTask(kernel, task, image.entry, args));
    ASSERT_OK(kernel.RunTask(task));
    EXPECT_EQ(task.state(), TaskState::kExited);
    if (i == 0) {
      uint64_t first_run = em.blocks_decoded->value() - decoded_before_first;
      EXPECT_GT(first_run, 0u);
      decoded_before_first = em.blocks_decoded->value();
    } else {
      EXPECT_EQ(em.blocks_decoded->value(), decoded_before_first)
          << "second task re-decoded blocks it should share";
    }
  }
}

// ---- Invalidation on redefinition and upgrade -------------------------------

constexpr char kCrt0[] = R"(
.text
.global _start
_start:
  call main
  sys 0
)";

// v1: (5 + 2) * 3 = 21; v2: (5 + 12) * 3 = 51.
constexpr char kAddLibV1[] = R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

constexpr char kAddLibV2[] = R"(
.text
.global add2
add2:
  addi r0, r0, 12
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

// The client loops so redefinitions and repoints land while tasks are
// mid-execution; the exit code is the final iteration's result, so any
// consistent version yields exactly 21 or 51.
constexpr char kLoopingClient[] = R"(
.text
.global main
main:
  push lr
  movi r4, 0
  movi r5, 20000
mloop:
  movi r0, 5
  call add2
  call mul3
  addi r4, r4, 1
  blt r4, r5, mloop
  pop lr
  ret
)";

class EngineInvalidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // These tests assert on block-cache occupancy, so pin the block engine
    // even when the suite runs under OMOS_ENGINE=interp.
    kernel_.SetEngineMode(EngineMode::kBlocks);
    server_ = std::make_unique<OmosServer>(kernel_);
    ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(kCrt0, "crt0.o"));
    ASSERT_OK(server_->AddFragment("/lib/crt0.o", std::move(crt0)));
    ASSERT_OK_AND_ASSIGN(ObjectFile v1, Assemble(kAddLibV1, "addlib.o"));
    ASSERT_OK(server_->AddFragment("/obj/addlib.o", std::move(v1)));
    ASSERT_OK_AND_ASSIGN(ObjectFile v2, Assemble(kAddLibV2, "addlib2.o"));
    ASSERT_OK(server_->AddFragment("/obj/addlib2.o", std::move(v2)));
    ASSERT_OK_AND_ASSIGN(ObjectFile client, Assemble(kLoopingClient, "client.o"));
    ASSERT_OK(server_->AddFragment("/obj/client.o", std::move(client)));
    ASSERT_OK(server_->DefineLibrary("/lib/addlib", "(merge /obj/addlib.o)"));
  }

  Result<int> ExecAndRun(const std::string& path) {
    OMOS_TRY(TaskId id, server_->IntegratedExec(path, {"prog"}));
    Task* task = kernel_.FindTask(id);
    OMOS_TRY_VOID(kernel_.RunTask(*task));
    int code = task->exit_code();
    server_->ReleaseTask(id);
    kernel_.DestroyTask(id);
    return code;
  }

  OmosServer::UpgradeStatus DrainToTerminal() {
    OmosServer::UpgradeStatus status = server_->DrainUpgrade();
    for (int round = 0; round < 64 && !status.terminal(); ++round) {
      status = server_->DrainUpgrade();
    }
    return status;
  }

  Kernel kernel_;
  std::unique_ptr<OmosServer> server_;
};

TEST_F(EngineInvalidationTest, RedefinitionDropsCachedBlocks) {
  ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/client.o /lib/addlib)"));
  ASSERT_OK_AND_ASSIGN(int before, ExecAndRun("/bin/prog"));
  EXPECT_EQ(before, 21);
  EXPECT_GT(kernel_.engine().CachedBlocks(), 0u);

  EngineMetrics& em = GetEngineMetrics();
  uint64_t inval_before = em.invalidations->value();
  uint64_t epoch_before = kernel_.engine().epoch();
  ASSERT_OK(server_->DefineLibrary("/lib/addlib", "(merge /obj/addlib2.o)"));
  EXPECT_EQ(kernel_.engine().CachedBlocks(), 0u);
  EXPECT_GT(kernel_.engine().epoch(), epoch_before);
  EXPECT_GT(em.invalidations->value(), inval_before);

  ASSERT_OK_AND_ASSIGN(int after, ExecAndRun("/bin/prog"));
  EXPECT_EQ(after, 51);
}

TEST_F(EngineInvalidationTest, UpgradeRepointInvalidatesCachedBlocks) {
  ASSERT_OK(server_->DefineMeta("/bin/dynprog",
                                "(merge /lib/crt0.o /obj/client.o"
                                " (specialize \"lib-dynamic\" /lib/addlib))"));
  ASSERT_OK_AND_ASSIGN(int before, ExecAndRun("/bin/dynprog"));
  EXPECT_EQ(before, 21);

  EngineMetrics& em = GetEngineMetrics();
  uint64_t inval_before = em.invalidations->value();
  ASSERT_OK(server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib2.o)"));
  OmosServer::UpgradeStatus status = DrainToTerminal();
  EXPECT_EQ(status.phase, UpgradePhase::kDone) << status.error;
  EXPECT_GT(em.invalidations->value(), inval_before);

  ASSERT_OK_AND_ASSIGN(int after, ExecAndRun("/bin/dynprog"));
  EXPECT_EQ(after, 51);
}

// ---- Concurrency (run under TSan in CI) -------------------------------------

// Redefinition while worker threads execute cached blocks: each task was
// linked against the version current at exec time and its frames stay
// alive (refcounted) through the redefinition, so it must exit with
// exactly that version's value — a stale or torn decode would break the
// arithmetic. The InvalidateAll storm races block decode/lookup on the
// workers.
TEST_F(EngineInvalidationTest, RedefinitionWhileTasksExecute) {
  ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/client.o /lib/addlib)"));
  constexpr int kWorkers = 4;
  constexpr int kRounds = 4;
  std::atomic<int> bad{0};
  for (int round = 0; round < kRounds; ++round) {
    const bool v2 = (round % 2) != 0;
    ASSERT_OK(server_->DefineLibrary(
        "/lib/addlib", v2 ? "(merge /obj/addlib2.o)" : "(merge /obj/addlib.o)"));
    const int expected = v2 ? 51 : 21;

    std::vector<TaskId> ids;
    for (int i = 0; i < kWorkers; ++i) {
      ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/prog", {"prog"}));
      ids.push_back(id);
    }
    std::atomic<int> finished{0};
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int i = 0; i < kWorkers; ++i) {
      workers.emplace_back([&, i] {
        Task* task = kernel_.FindTask(ids[static_cast<size_t>(i)]);
        if (task == nullptr || !kernel_.RunTask(*task).ok() || task->exit_code() != expected) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
        finished.fetch_add(1, std::memory_order_release);
      });
    }
    // Redefine back and forth while the workers run: every flip clears the
    // block cache under their feet.
    while (finished.load(std::memory_order_acquire) < kWorkers) {
      ASSERT_OK(server_->DefineLibrary("/lib/addlib", "(merge /obj/addlib2.o)"));
      ASSERT_OK(server_->DefineLibrary("/lib/addlib", "(merge /obj/addlib.o)"));
      std::this_thread::yield();
    }
    for (std::thread& t : workers) {
      t.join();
    }
    for (TaskId id : ids) {
      server_->ReleaseTask(id);
      kernel_.DestroyTask(id);
    }
  }
  EXPECT_EQ(bad.load(), 0);
}

// Raw InvalidateAll storm against concurrently executing tasks: the
// shared_ptr discipline must keep in-flight blocks alive (no use-after-free
// under ASan/TSan) and re-decoded blocks must compute the same results.
TEST(EngineConcurrency, InvalidateAllWhileTasksExecute) {
  Kernel kernel;
  kernel.SetEngineMode(EngineMode::kBlocks);
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(kLoopProgram, "loop.o"));
  Module module = Module::FromObject(std::make_shared<const ObjectFile>(std::move(object)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(module, layout, "loop"));

  constexpr int kWorkers = 4;
  std::vector<Task*> tasks;
  for (int i = 0; i < kWorkers; ++i) {
    Task& task = kernel.CreateTask(StrCat("worker", i));
    ASSERT_OK(MapLinkedImage(kernel, task, image, "pagecache:loop"));
    std::vector<std::string> args{"loop"};
    ASSERT_OK(StartTask(kernel, task, image.entry, args));
    tasks.push_back(&task);
  }

  std::atomic<int> bad{0};
  std::atomic<int> finished{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    workers.emplace_back([&, i] {
      Task* task = tasks[static_cast<size_t>(i)];
      if (!kernel.RunTask(*task).ok() || task->state() != TaskState::kExited ||
          task->exit_code() != 0) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
      finished.fetch_add(1, std::memory_order_release);
    });
  }
  uint64_t invalidations = 0;
  while (finished.load(std::memory_order_acquire) < kWorkers) {
    kernel.engine().InvalidateAll("test.storm");
    ++invalidations;
    std::this_thread::yield();
  }
  for (std::thread& t : workers) {
    t.join();
  }
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(invalidations, 0u);
}

}  // namespace
}  // namespace omos
