// Workload integration: ls and codegen must behave identically under the
// traditional baseline and both OMOS schemes.
#include <gtest/gtest.h>

#include "src/baseline/dynlib.h"
#include "src/core/server.h"
#include "src/support/strings.h"
#include "src/workloads/workloads.h"
#include "tests/helpers.h"

namespace omos {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadParams params;
    params.libc_filler = 24;  // keep unit tests fast; benches use full size
    params.alpha_functions = 30;
    params.libm_functions = 12;
    params.libl_functions = 8;
    params.libcpp_functions = 20;
    params.codegen_files = 8;
    params.codegen_funcs_per_file = 4;
    auto built = BuildWorkloads(params);
    ASSERT_TRUE(built.ok()) << built.error().ToString();
    workloads_ = new Workloads(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete workloads_;
    workloads_ = nullptr;
  }

  void SetUp() override {
    PopulateLsData(kernel_.fs());
    PopulateCodegenInputs(kernel_.fs());
  }

  Result<RunOutcome> FinishTask(Kernel& kernel, TaskId id) {
    Task* task = kernel.FindTask(id);
    OMOS_TRY_VOID(kernel.RunTask(*task));
    RunOutcome out;
    out.exit_code = task->exit_code();
    out.output = task->output();
    out.user_cycles = task->user_cycles();
    out.sys_cycles = task->sys_cycles();
    return out;
  }

  // Register workload objects with an OMOS server (ls program + libc).
  Result<void> RegisterWithOmos(OmosServer& server) {
    OMOS_TRY_VOID(server.AddFragment("/lib/crt0.o", workloads_->crt0));
    OMOS_TRY_VOID(server.AddFragment("/obj/ls.o", workloads_->ls_obj));
    OMOS_TRY_VOID(server.AddArchive("/libc", workloads_->libc));
    OMOS_TRY_VOID(server.DefineLibrary("/lib/libc",
                                       "(constraint-list \"T\" 0x2000000)\n(merge /libc)"));
    OMOS_TRY_VOID(
        server.DefineMeta("/bin/ls", "(merge /lib/crt0.o /obj/ls.o /lib/libc)"));
    return OkResult();
  }

  static Workloads* workloads_;
  Kernel kernel_;
};

Workloads* WorkloadTest::workloads_ = nullptr;

TEST_F(WorkloadTest, LsUnderOmosIntegratedExec) {
  OmosServer server(kernel_);
  ASSERT_OK(RegisterWithOmos(server));
  ASSERT_OK_AND_ASSIGN(TaskId id, server.IntegratedExec("/bin/ls", {"ls", "/data"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, FinishTask(kernel_, id));
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_EQ(out.output, ExpectedLsShortOutput(kernel_.fs(), "/data"));
}

TEST_F(WorkloadTest, LsLongModeStatsEveryEntry) {
  OmosServer server(kernel_);
  ASSERT_OK(RegisterWithOmos(server));
  ASSERT_OK_AND_ASSIGN(TaskId id, server.IntegratedExec("/bin/ls", {"ls", "-laF", "/data"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, FinishTask(kernel_, id));
  EXPECT_EQ(out.exit_code, 0);
  // Long mode emits a mode string per entry.
  EXPECT_NE(out.output.find("rw-r--r--"), std::string::npos);
  EXPECT_NE(out.output.find("file00.txt"), std::string::npos);
  // And costs more than short mode.
  ASSERT_OK_AND_ASSIGN(TaskId short_id, server.IntegratedExec("/bin/ls", {"ls", "/data"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome short_out, FinishTask(kernel_, short_id));
  EXPECT_GT(out.sys_cycles, short_out.sys_cycles);
}

TEST_F(WorkloadTest, LsUnderBaselineMatchesOmos) {
  // OMOS run.
  OmosServer server(kernel_);
  ASSERT_OK(RegisterWithOmos(server));
  ASSERT_OK_AND_ASSIGN(TaskId omos_id, server.IntegratedExec("/bin/ls", {"ls", "-laF", "/data"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome omos_out, FinishTask(kernel_, omos_id));

  // Baseline run in a separate kernel.
  Kernel base_kernel;
  PopulateLsData(base_kernel.fs());
  Rtld rtld(base_kernel);
  DynLibBuilder builder;
  ASSERT_OK_AND_ASSIGN(Module libc_module, ModuleFromArchive(workloads_->libc));
  ASSERT_OK_AND_ASSIGN(DynImage libc, builder.BuildLibrary("libc", libc_module));
  ASSERT_OK(rtld.Install(std::move(libc)));
  ASSERT_OK_AND_ASSIGN(Module ls_module,
                       ModuleFromObjects({workloads_->crt0, workloads_->ls_obj}));
  ASSERT_OK_AND_ASSIGN(DynImage ls_prog,
                       builder.BuildExecutable("ls", ls_module, {rtld.Find("libc")}));
  ASSERT_OK(rtld.Install(std::move(ls_prog)));
  ASSERT_OK_AND_ASSIGN(TaskId base_id, rtld.Exec("ls", {"ls", "-laF", "/data"}));
  Task* base_task = base_kernel.FindTask(base_id);
  ASSERT_OK(base_kernel.RunTask(*base_task));

  EXPECT_EQ(base_task->exit_code(), omos_out.exit_code);
  EXPECT_EQ(base_task->output(), omos_out.output);
}

TEST_F(WorkloadTest, CodegenSameResultUnderAllSchemes) {
  // OMOS self-contained.
  OmosServer server(kernel_);
  ASSERT_OK(server.AddFragment("/lib/crt0.o", workloads_->crt0));
  for (size_t i = 0; i < workloads_->codegen_objs.size(); ++i) {
    ASSERT_OK(server.AddFragment(StrCat("/obj/cg", i, ".o"), workloads_->codegen_objs[i]));
  }
  ASSERT_OK(server.AddArchive("/libc", workloads_->libc));
  ASSERT_OK(server.AddArchive("/alpha1", workloads_->alpha1));
  ASSERT_OK(server.AddArchive("/alpha2", workloads_->alpha2));
  ASSERT_OK(server.AddArchive("/libm", workloads_->libm));
  ASSERT_OK(server.AddArchive("/libl", workloads_->libl));
  ASSERT_OK(server.AddArchive("/libC", workloads_->libcpp));
  std::string meta = "(merge /lib/crt0.o";
  for (size_t i = 0; i < workloads_->codegen_objs.size(); ++i) {
    meta += StrCat(" /obj/cg", i, ".o");
  }
  meta += " /libc /alpha1 /alpha2 /libm /libl /libC)";
  ASSERT_OK(server.DefineMeta("/bin/codegen", meta));
  ASSERT_OK_AND_ASSIGN(TaskId id, server.IntegratedExec("/bin/codegen", {"codegen"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome omos_out, FinishTask(kernel_, id));
  EXPECT_EQ(omos_out.exit_code, 0);
  EXPECT_FALSE(omos_out.output.empty());

  // Baseline with six shared libraries.
  Kernel base_kernel;
  PopulateCodegenInputs(base_kernel.fs());
  Rtld rtld(base_kernel);
  DynLibBuilder builder;
  std::vector<const DynImage*> libs;
  for (const Archive* archive : {&workloads_->libc, &workloads_->alpha1, &workloads_->alpha2,
                                 &workloads_->libm, &workloads_->libl, &workloads_->libcpp}) {
    ASSERT_OK_AND_ASSIGN(Module m, ModuleFromArchive(*archive));
    ASSERT_OK_AND_ASSIGN(DynImage lib, builder.BuildLibrary(archive->name(), m));
    ASSERT_OK(rtld.Install(std::move(lib)));
    libs.push_back(rtld.Find(archive->name()));
  }
  std::vector<ObjectFile> prog_objs = workloads_->codegen_objs;
  prog_objs.insert(prog_objs.begin(), workloads_->crt0);
  ASSERT_OK_AND_ASSIGN(Module prog_module, ModuleFromObjects(prog_objs));
  ASSERT_OK_AND_ASSIGN(DynImage prog, builder.BuildExecutable("codegen", prog_module, libs));
  ASSERT_OK(rtld.Install(std::move(prog)));
  ASSERT_OK_AND_ASSIGN(TaskId base_id, rtld.Exec("codegen", {"codegen"}));
  Task* base_task = base_kernel.FindTask(base_id);
  ASSERT_OK(base_kernel.RunTask(*base_task));
  EXPECT_EQ(base_task->output(), omos_out.output);
  EXPECT_EQ(base_task->exit_code(), omos_out.exit_code);
}

}  // namespace
}  // namespace omos
