// Edge-path coverage across modules: loader corner cases, layout errors,
// kernel billing, blueprint evaluator error paths, module Bind, misc.
#include <gtest/gtest.h>

#include "src/core/server.h"
#include "src/support/strings.h"
#include "tests/helpers.h"

namespace omos {
namespace {

// ---- Link layout corner cases -------------------------------------------------

TEST(Coverage, ExplicitDataBaseOverlapRejected) {
  auto object = std::make_shared<ObjectFile>("o.o");
  object->section(SectionKind::kText).bytes.resize(kPageSize + 16);
  object->section(SectionKind::kData).bytes = {1, 2, 3, 4};
  ASSERT_OK(object->DefineSymbol("f", SymbolBinding::kGlobal, SectionKind::kText, 0));
  Module m = Module::FromObject(object);
  LayoutSpec layout;
  layout.text_base = 0x100000;
  layout.data_base = 0x100800;  // inside the text segment
  auto result = LinkImage(m, layout, "bad");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

TEST(Coverage, EmptyModuleLinks) {
  Module m;
  LayoutSpec layout;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "empty"));
  EXPECT_TRUE(image.text.empty());
  EXPECT_EQ(image.entry, 0u);
}

TEST(Coverage, PcRelRelocationAcrossFragments) {
  // callpc from one fragment to a symbol in another: displacement math.
  ASSERT_OK_AND_ASSIGN(ObjectFile a, Assemble(R"(
.text
.global _start
_start:
  callpc target
  sys 0
)", "a.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile b, Assemble(R"(
.text
.global target
target:
  movi r0, 33
  ret
)", "b.o"));
  Kernel kernel;
  Module ma = Module::FromObject(std::make_shared<const ObjectFile>(std::move(a)));
  Module mb = Module::FromObject(std::make_shared<const ObjectFile>(std::move(b)));
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(ma, mb));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(merged, layout, "p"));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunImage(kernel, image));
  EXPECT_EQ(out.exit_code, 33);
}

TEST(Coverage, RelocationAddendApplied) {
  // lea of symbol+8 via a manual reloc with addend.
  auto object = std::make_shared<ObjectFile>("a.o");
  ObjectFile& obj = *object;
  uint8_t insn[8] = {static_cast<uint8_t>(2 /*kMovI*/), 0, 0, 0, 0, 0, 0, 0};
  auto& text = obj.section(SectionKind::kText).bytes;
  text.insert(text.end(), insn, insn + 8);
  obj.section(SectionKind::kData).bytes.resize(16);
  ASSERT_OK(obj.DefineSymbol("d", SymbolBinding::kGlobal, SectionKind::kData, 0));
  obj.AddReloc(SectionKind::kText, Relocation{4, RelocKind::kAbs32, "d", 8, {}});
  Module m = Module::FromObject(object);
  LayoutSpec layout;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "p"));
  uint32_t patched = static_cast<uint32_t>(image.text[4]) |
                     static_cast<uint32_t>(image.text[5]) << 8 |
                     static_cast<uint32_t>(image.text[6]) << 16 |
                     static_cast<uint32_t>(image.text[7]) << 24;
  EXPECT_EQ(patched, image.data_base + 8);
}

// ---- Module::Bind explicitly ---------------------------------------------------

TEST(Coverage, BindAfterRenameResolvesWithoutMerge) {
  ASSERT_OK_AND_ASSIGN(ObjectFile both, Assemble(R"(
.text
.global caller
caller:
  push lr
  call old_name
  pop lr
  ret
.global new_name
new_name:
  movi r0, 1
  ret
)", "both.o"));
  Module m = Module::FromObject(std::make_shared<const ObjectFile>(std::move(both)));
  // old_name is unbound; rename the reference and Bind() resolves it in
  // place — no merge required.
  Module renamed = m.Rename("^old_name$", "new_name", RenameWhich::kRefs);
  ASSERT_OK_AND_ASSIGN(Module bound, renamed.Bind());
  ASSERT_OK_AND_ASSIGN(auto unbound, bound.UnboundRefNames());
  EXPECT_TRUE(unbound.empty());
}

// ---- Blueprint evaluator error paths --------------------------------------------

class EvalErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OmosServer>(kernel_);
    ASSERT_OK_AND_ASSIGN(ObjectFile obj,
                         Assemble(".text\n.global f\nf: ret\n", "f.o"));
    ASSERT_OK(server_->AddFragment("/obj/f.o", std::move(obj)));
  }
  Kernel kernel_;
  std::unique_ptr<OmosServer> server_;
};

TEST_F(EvalErrors, UnknownOperation) {
  auto result = server_->EvaluateBlueprint("(frobnicate /obj/f.o)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("unknown operation"), std::string::npos);
}

TEST_F(EvalErrors, MissingStringArgument) {
  auto result = server_->EvaluateBlueprint("(restrict /obj/f.o)");
  ASSERT_FALSE(result.ok());
}

TEST_F(EvalErrors, UnknownName) {
  auto result = server_->EvaluateBlueprint("(merge /obj/missing.o)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

TEST_F(EvalErrors, RecursiveMetaObjectDetected) {
  ASSERT_OK(server_->DefineMeta("/meta/self", "(merge /meta/self)"));
  auto result = server_->Instantiate("/meta/self", {}, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("too deep"), std::string::npos);
}

TEST_F(EvalErrors, BadSourceLanguage) {
  auto result = server_->EvaluateBlueprint("(source \"fortran\" \"x\")");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnsupported);
}

TEST_F(EvalErrors, SourceAsmSyntaxErrorPropagates) {
  auto result = server_->EvaluateBlueprint("(source \"asm\" \"frob r99\")");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
}

TEST_F(EvalErrors, SpecializeOnNonLibraryRejected) {
  auto result = server_->EvaluateBlueprint("(specialize \"lib-dynamic\" /obj/f.o)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnsupported);
}

TEST_F(EvalErrors, ConstrainSetsHintForProgram) {
  ASSERT_OK(server_->DefineMeta("/bin/pinned", R"(
(constrain "T" 0x5000000
  (merge (source "asm" ".text\n.global _start\n_start:\n  sys 0\n")))
)"));
  ASSERT_OK_AND_ASSIGN(const CachedImage* image,
                       server_->Instantiate("/bin/pinned", {}, nullptr));
  EXPECT_EQ(image->image.text_base, 0x5000000u);
}

// ---- Kernel billing and mapping --------------------------------------------------

TEST(Coverage, MapPrivateBillsMapAndCopy) {
  Kernel kernel;
  Task& task = kernel.CreateTask("t");
  uint64_t before = task.sys_cycles();
  std::vector<uint8_t> init(kPageSize * 2, 1);
  ASSERT_OK(kernel.MapPrivate(task, 0x10000, kPageSize * 2, init, kProtRead | kProtWrite, "d"));
  uint64_t billed = task.sys_cycles() - before;
  EXPECT_EQ(billed, 2 * (kernel.costs().page_map + kernel.costs().page_copy));
}

TEST(Coverage, MapSharedBillsMapOnly) {
  Kernel kernel;
  Task& task = kernel.CreateTask("t");
  std::vector<uint8_t> bytes(kPageSize, 2);
  ASSERT_OK_AND_ASSIGN(const SegmentImage* seg, kernel.PageCachePut("k", bytes));
  uint64_t before = task.sys_cycles();
  ASSERT_OK(kernel.MapShared(task, 0x10000, *seg, kProtRead, "t"));
  EXPECT_EQ(task.sys_cycles() - before, kernel.costs().page_map);
}

TEST(Coverage, TaskExitCodePropagation) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r0, 7
  sys 0
  movi r0, 9   ; never reached
  sys 0
)"));
  EXPECT_EQ(out.exit_code, 7);
}

TEST(Coverage, WriteToUnknownFdFails) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r0, 42     ; not an open fd
  lea r1, msg
  movi r2, 2
  sys 1
  sys 0           ; exit(write result)
.data
msg: .ascii "xy"
)"));
  EXPECT_EQ(out.exit_code, -1);
}

// ---- Partial-image interplay with redefinition ------------------------------------

TEST(Coverage, LazyStubsOnlyForReferencedEntryPoints) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(R"(
.text
.global used_fn
used_fn:
  movi r0, 6
  ret
.global unused_fn
unused_fn:
  movi r0, 7
  ret
)", "lib.o"));
  ASSERT_OK(server.AddFragment("/obj/lib.o", std::move(lib)));
  ASSERT_OK(server.DefineLibrary("/lib/l", "(merge /obj/lib.o)"));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global _start
_start:
  call used_fn
  sys 0
)", "m.o"));
  ASSERT_OK(server.AddFragment("/obj/m.o", std::move(main_obj)));
  ASSERT_OK(server.DefineMeta("/bin/p",
                              "(merge /obj/m.o (specialize \"lib-dynamic\" /lib/l))"));
  ASSERT_OK_AND_ASSIGN(const CachedImage* image, server.Instantiate("/bin/p", {}, nullptr));
  // "stub functions [are] generated for each referenced entry point" (§4.2):
  // only used_fn has a stub slot.
  ASSERT_EQ(image->stub_slots.size(), 1u);
  EXPECT_EQ(image->stub_slots[0].symbol, "used_fn");
}

// ---- Specialized instantiations are distinct cache entries ------------------------

TEST(Coverage, MonitorAndPlainImagesCoexist) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK_AND_ASSIGN(ObjectFile obj, Assemble(R"(
.text
.global _start
_start:
  call work
  sys 0
.global work
work:
  movi r0, 0
  ret
)", "w.o"));
  ASSERT_OK(server.AddFragment("/obj/w.o", std::move(obj)));
  ASSERT_OK(server.DefineMeta("/bin/w", "(merge /obj/w.o)"));
  ASSERT_OK_AND_ASSIGN(const CachedImage* plain, server.Instantiate("/bin/w", {}, nullptr));
  ASSERT_OK_AND_ASSIGN(const CachedImage* monitored,
                       server.Instantiate("/bin/w", Specialization{"monitor", {}}, nullptr));
  EXPECT_NE(plain->key, monitored->key);
  // The monitored image is larger (wrappers added).
  EXPECT_GT(monitored->image.text.size(), plain->image.text.size());
  EXPECT_EQ(server.cache().entry_count(), 2u);
}

// ---- SimFs + namespace normalization edge cases ------------------------------------

TEST(Coverage, NamespaceNormalization) {
  EXPECT_EQ(OmosNamespace::Normalize("lib/libc"), "/lib/libc");
  EXPECT_EQ(OmosNamespace::Normalize("//lib//libc/"), "/lib/libc");
  EXPECT_EQ(OmosNamespace::Normalize("/"), "/");
  EXPECT_EQ(OmosNamespace::Normalize(""), "/");
}

TEST(Coverage, SolverDataArenaIndependentOfText) {
  ConstraintSolver solver;
  PlacementHints hints;
  hints.text_base = 0x01000000;
  hints.data_base = 0x40000000;
  ASSERT_OK_AND_ASSIGN(Placement p, solver.Place("x", 0x1000, 0x1000, hints));
  EXPECT_EQ(p.text_base, 0x01000000u);
  EXPECT_EQ(p.data_base, 0x40000000u);
  // Second object with only a data hint that collides spills data only.
  PlacementHints hints2;
  hints2.data_base = 0x40000000;
  ASSERT_OK_AND_ASSIGN(Placement q, solver.Place("y", 0x1000, 0x1000, hints2));
  EXPECT_NE(q.data_base, 0x40000000u);
  EXPECT_EQ(solver.conflicts().size(), 1u);
}

}  // namespace
}  // namespace omos
