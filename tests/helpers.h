// Shared test utilities: assemble-and-run harnesses.
#ifndef OMOS_TESTS_HELPERS_H_
#define OMOS_TESTS_HELPERS_H_

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/linker/link.h"
#include "src/linker/module.h"
#include "src/os/kernel.h"
#include "src/os/loader.h"
#include "src/vasm/assembler.h"

namespace omos {

// gtest-friendly unwrap: ASSERT_OK(result) aborts the test with the error.
#define ASSERT_OK(expr)                                          \
  do {                                                           \
    const auto& omos_assert_ok_ = (expr);                        \
    ASSERT_TRUE(omos_assert_ok_.ok()) << omos_assert_ok_.error().ToString(); \
  } while (false)

#define EXPECT_OK(expr)                                          \
  do {                                                           \
    const auto& omos_expect_ok_ = (expr);                        \
    EXPECT_TRUE(omos_expect_ok_.ok()) << omos_expect_ok_.error().ToString(); \
  } while (false)

// Unwrap a Result into `lhs`, failing the test on error.
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                       \
  auto OMOS_CONCAT_(result_, __LINE__) = (expr);              \
  ASSERT_TRUE(OMOS_CONCAT_(result_, __LINE__).ok())           \
      << OMOS_CONCAT_(result_, __LINE__).error().ToString();  \
  lhs = std::move(OMOS_CONCAT_(result_, __LINE__)).value()

struct RunOutcome {
  int exit_code = 0;
  std::string output;
  uint64_t user_cycles = 0;
  uint64_t sys_cycles = 0;
  uint64_t instructions = 0;
};

// Assemble `source` as a standalone program (must define _start), link it at
// a default base, load it into a fresh task and run it to completion.
inline Result<RunOutcome> AssembleAndRun(Kernel& kernel, const std::string& source,
                                         std::vector<std::string> args = {}) {
  OMOS_TRY(ObjectFile object, Assemble(source, "test.o"));
  Module module = Module::FromObject(std::make_shared<const ObjectFile>(std::move(object)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  OMOS_TRY(LinkedImage image, LinkImage(module, layout, "test"));
  Task& task = kernel.CreateTask("test");
  OMOS_TRY_VOID(MapLinkedImage(kernel, task, image, ""));
  OMOS_TRY_VOID(StartTask(kernel, task, image.entry, args));
  OMOS_TRY_VOID(kernel.RunTask(task));
  RunOutcome outcome;
  outcome.exit_code = task.exit_code();
  outcome.output = task.output();
  outcome.user_cycles = task.user_cycles();
  outcome.sys_cycles = task.sys_cycles();
  outcome.instructions = task.instructions_retired();
  return outcome;
}

// Run an already-linked image.
inline Result<RunOutcome> RunImage(Kernel& kernel, const LinkedImage& image,
                                   std::vector<std::string> args = {}) {
  Task& task = kernel.CreateTask(image.name);
  OMOS_TRY_VOID(MapLinkedImage(kernel, task, image, ""));
  OMOS_TRY_VOID(StartTask(kernel, task, image.entry, args));
  OMOS_TRY_VOID(kernel.RunTask(task));
  RunOutcome outcome;
  outcome.exit_code = task.exit_code();
  outcome.output = task.output();
  outcome.user_cycles = task.user_cycles();
  outcome.sys_cycles = task.sys_cycles();
  outcome.instructions = task.instructions_retired();
  return outcome;
}

}  // namespace omos

#endif  // OMOS_TESTS_HELPERS_H_
