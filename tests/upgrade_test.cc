// Live library upgrade (src/upgrade/, docs/upgrade.md): the frame-transfer
// map against hand-built LinkedImages, then the full hot-patch engine on a
// running server — idle-task drains, deterministic mid-run OSR transfers
// (paused via the instruction budget), degradation stubs for deleted
// symbols, and the FaultSim kill-point sweep over every upgrade phase.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cache.h"
#include "src/core/server.h"
#include "src/support/faultsim.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/upgrade/upgrade.h"
#include "tests/helpers.h"

namespace omos {
namespace {

// ---- FrameTransferMap unit tests (no server) --------------------------------

ImageSymbol Sym(std::string name, uint32_t addr, SectionKind section = SectionKind::kText) {
  ImageSymbol sym;
  sym.name = std::move(name);
  sym.addr = addr;
  sym.section = section;
  return sym;
}

// Two-function text segment: f at +0 (2 insns), g at +16 (2 insns).
LinkedImage OldImage() {
  LinkedImage image;
  image.name = "old";
  image.text_base = 0x1000;
  image.text.resize(32);
  image.data_base = 0x2000;
  image.data.resize(8);
  image.symbols.push_back(Sym("f", 0x1000));
  image.symbols.push_back(Sym("g", 0x1010));
  image.symbols.push_back(Sym("counter", 0x2000, SectionKind::kData));
  image.BuildSymbolIndex();
  return image;
}

TEST(FrameTransferMapTest, SameSizeSymbolMapsByOffset) {
  LinkedImage old_image = OldImage();
  LinkedImage new_image = OldImage();
  new_image.name = "new";
  new_image.text_base = 0x5000;
  new_image.data_base = 0x6000;
  new_image.symbols.clear();
  new_image.symbols.push_back(Sym("f", 0x5000));
  new_image.symbols.push_back(Sym("g", 0x5010));
  new_image.symbols.push_back(Sym("counter", 0x6000, SectionKind::kData));
  new_image.BuildSymbolIndex();

  FrameTransferMap map = FrameTransferMap::Build(old_image, new_image, {});
  EXPECT_TRUE(map.Covers(0x1000));
  EXPECT_TRUE(map.Covers(0x101F));
  EXPECT_FALSE(map.Covers(0x0FFF));
  EXPECT_FALSE(map.Covers(0x1020));
  // Whole extents map by offset, including mid-function addresses.
  EXPECT_EQ(map.MapAddr(0x1000), 0x5000u);
  EXPECT_EQ(map.MapAddr(0x1008), 0x5008u);
  EXPECT_EQ(map.MapAddr(0x1010), 0x5010u);
  EXPECT_EQ(map.MapAddr(0x1018), 0x5018u);
  // Same-size data symbols become carries.
  ASSERT_EQ(map.data_carries().size(), 1u);
  EXPECT_EQ(map.data_carries()[0].name, "counter");
  EXPECT_EQ(map.data_carries()[0].old_addr, 0x2000u);
  EXPECT_EQ(map.data_carries()[0].new_addr, 0x6000u);
}

TEST(FrameTransferMapTest, ResizedSymbolMapsEntryOnly) {
  LinkedImage old_image = OldImage();
  LinkedImage new_image;
  new_image.name = "new";
  new_image.text_base = 0x5000;
  new_image.text.resize(40);  // f grew from 16 to 24 bytes
  new_image.symbols.push_back(Sym("f", 0x5000));
  new_image.symbols.push_back(Sym("g", 0x5018));
  new_image.BuildSymbolIndex();

  FrameTransferMap map = FrameTransferMap::Build(old_image, new_image, {});
  // Entry transfers; a frame suspended mid-body must defer.
  EXPECT_EQ(map.MapAddr(0x1000), 0x5000u);
  EXPECT_EQ(map.MapAddr(0x1008), std::nullopt);
  // g kept its 16-byte extent, so it still maps by offset.
  EXPECT_EQ(map.MapAddr(0x1018), 0x5020u);
}

TEST(FrameTransferMapTest, DeletedSymbolMapsToStubEntryOnly) {
  LinkedImage old_image = OldImage();
  LinkedImage new_image;
  new_image.name = "new";
  new_image.text_base = 0x5000;
  new_image.text.resize(16);  // only f survives
  new_image.symbols.push_back(Sym("f", 0x5000));
  new_image.BuildSymbolIndex();

  EXPECT_EQ(DeletedTextSymbols(old_image, new_image), std::vector<std::string>{"g"});

  FrameTransferMap with_stub = FrameTransferMap::Build(old_image, new_image, {{"g", 0x7000}});
  EXPECT_EQ(with_stub.MapAddr(0x1010), 0x7000u);      // entry -> stub
  EXPECT_EQ(with_stub.MapAddr(0x1018), std::nullopt);  // mid-body never transfers

  FrameTransferMap no_stub = FrameTransferMap::Build(old_image, new_image, {});
  EXPECT_EQ(no_stub.MapAddr(0x1010), std::nullopt);
}

TEST(FrameTransferMapTest, DefaultMapCoversNothing) {
  FrameTransferMap map;
  EXPECT_FALSE(map.Covers(0));
  EXPECT_FALSE(map.Covers(0x1000));
  EXPECT_EQ(map.MapAddr(0x1000), 0x1000u);  // uncovered addresses pass through
}

TEST(FrameTransferMapTest, DegradationStubObjectAssembles) {
  ASSERT_OK_AND_ASSIGN(ObjectFile stub, GenerateDegradationStubs({"helper", "zap"}, "stubs.o"));
  // Both symbols exported from the generated object.
  bool saw_helper = false;
  bool saw_zap = false;
  for (const auto& sym : stub.symbols()) {
    saw_helper = saw_helper || sym.name == "helper";
    saw_zap = saw_zap || sym.name == "zap";
  }
  EXPECT_TRUE(saw_helper);
  EXPECT_TRUE(saw_zap);
}

// ---- Full-engine tests on a live server -------------------------------------

constexpr char kCrt0[] = R"(
.text
.global _start
_start:
  call main
  sys 0
)";

// v1: add2 adds 2, mul3 multiplies by 3 -> client exits 21.
constexpr char kAddLibV1[] = R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

// v2, same shape: add2 adds 12 -> client exits 51.
constexpr char kAddLibV2[] = R"(
.text
.global add2
add2:
  addi r0, r0, 12
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

constexpr char kClient[] = R"(
.text
.global main
main:
  push lr
  movi r0, 5
  call add2
  call mul3
  pop lr
  ret
)";

class UpgradeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OmosServer>(kernel_);
    ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(kCrt0, "crt0.o"));
    ASSERT_OK(server_->AddFragment("/lib/crt0.o", std::move(crt0)));
    ASSERT_OK_AND_ASSIGN(ObjectFile v1, Assemble(kAddLibV1, "addlib.o"));
    ASSERT_OK(server_->AddFragment("/obj/addlib.o", std::move(v1)));
    ASSERT_OK_AND_ASSIGN(ObjectFile v2, Assemble(kAddLibV2, "addlib2.o"));
    ASSERT_OK(server_->AddFragment("/obj/addlib2.o", std::move(v2)));
    ASSERT_OK_AND_ASSIGN(ObjectFile client, Assemble(kClient, "client.o"));
    ASSERT_OK(server_->AddFragment("/obj/client.o", std::move(client)));
    ASSERT_OK(server_->DefineLibrary("/lib/addlib", "(merge /obj/addlib.o)"));
    ASSERT_OK(server_->DefineMeta("/bin/dynprog",
                                  "(merge /lib/crt0.o /obj/client.o"
                                  " (specialize \"lib-dynamic\" /lib/addlib))"));
  }

  Result<RunOutcome> RunTaskById(TaskId id) {
    Task* task = kernel_.FindTask(id);
    if (task == nullptr) {
      return Err(ErrorCode::kNotFound, "no task");
    }
    OMOS_TRY_VOID(kernel_.RunTask(*task));
    RunOutcome out;
    out.exit_code = task->exit_code();
    out.output = task->output();
    return out;
  }

  // Exec /bin/dynprog, run it to completion, destroy the task; returns the
  // exit code.
  Result<int> ExecOnce() {
    OMOS_TRY(TaskId id, server_->IntegratedExec("/bin/dynprog", {"prog"}));
    OMOS_TRY(RunOutcome out, RunTaskById(id));
    server_->ReleaseTask(id);
    kernel_.DestroyTask(id);
    return out.exit_code;
  }

  // The old lib-dynamic implementation's cache key (what the upgrade must
  // eventually reclaim).
  static std::string OldImplKey() {
    Specialization impl;
    impl.name = "lib-dynamic-impl";
    return MakeCacheKey("/lib/addlib", impl.ToKeyString());
  }

  // Poll DrainUpgrade to a terminal phase (bounded; the background link and
  // reclaim run on the pool).
  OmosServer::UpgradeStatus DrainToTerminal() {
    OmosServer::UpgradeStatus status = server_->DrainUpgrade();
    for (int round = 0; round < 32 && !status.terminal(); ++round) {
      status = server_->DrainUpgrade();
    }
    return status;
  }

  Kernel kernel_;
  std::unique_ptr<OmosServer> server_;
};

TEST_F(UpgradeTest, UpgradeWithNoLiveTasksCompletes) {
  ASSERT_OK_AND_ASSIGN(int before, ExecOnce());
  EXPECT_EQ(before, 21);
  ASSERT_OK_AND_ASSIGN(uint64_t id, server_->BeginUpgrade("/lib/addlib",
                                                          "(merge /obj/addlib2.o)"));
  EXPECT_GT(id, 0u);
  OmosServer::UpgradeStatus status = DrainToTerminal();
  EXPECT_EQ(status.phase, UpgradePhase::kDone) << status.error;
  EXPECT_EQ(status.tasks_pending, 0u);
  // New execs see v2.
  ASSERT_OK_AND_ASSIGN(int after, ExecOnce());
  EXPECT_EQ(after, 51);
}

TEST_F(UpgradeTest, IdleTaskDrainsOnRelease) {
  uint64_t completed_before = UpgradeStats().completed->value();
  // A finished-but-unreleased task still holds the old version mapped.
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/dynprog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);

  ASSERT_OK(server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib2.o)"));
  OmosServer::UpgradeStatus status = server_->DrainUpgrade();
  for (int round = 0; round < 32 && status.phase == UpgradePhase::kLinking; ++round) {
    status = server_->DrainUpgrade();
  }
  // The exited task never reaches another safepoint: the upgrade drains on
  // its release instead.
  EXPECT_EQ(status.phase, UpgradePhase::kDraining);
  EXPECT_EQ(status.tasks_pending, 1u);

  server_->ReleaseTask(id);
  kernel_.DestroyTask(id);
  status = DrainToTerminal();
  EXPECT_EQ(status.phase, UpgradePhase::kDone) << status.error;
  EXPECT_EQ(UpgradeStats().completed->value(), completed_before + 1);

  // Reclamation dropped the old implementation image from the cache.
  EXPECT_FALSE(server_->cache().Contains(OldImplKey()));
  ASSERT_OK_AND_ASSIGN(int after, ExecOnce());
  EXPECT_EQ(after, 51);
}

TEST_F(UpgradeTest, SecondUpgradeWhileInFlightIsRejected) {
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/dynprog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);
  ASSERT_OK(server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib2.o)"));
  auto second = server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib.o)");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code(), ErrorCode::kUnavailable);
  server_->ReleaseTask(id);
  kernel_.DestroyTask(id);
  EXPECT_EQ(DrainToTerminal().phase, UpgradePhase::kDone);
}

TEST_F(UpgradeTest, UpgradeOfUnknownPathFails) {
  auto status = server_->BeginUpgrade("/lib/nope", "(merge /obj/addlib2.o)");
  ASSERT_FALSE(status.ok());
}

// Mid-run OSR: the client sums 60 calls to val() (v1 returns 1, v2 returns
// 3). Pausing the loop with a small instruction budget, upgrading, and
// resuming must (a) keep the task alive through the live transfer and (b)
// yield a sum strictly between the all-v1 (60) and all-v2 (180) totals.
TEST_F(UpgradeTest, MidRunFrameTransfer) {
  ASSERT_OK_AND_ASSIGN(ObjectFile val1, Assemble(R"(
.text
.global val
val:
  movi r0, 1
  ret
)", "val1.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile val2, Assemble(R"(
.text
.global val
val:
  movi r0, 3
  ret
)", "val2.o"));
  ASSERT_OK(server_->AddFragment("/obj/val1.o", std::move(val1)));
  ASSERT_OK(server_->AddFragment("/obj/val2.o", std::move(val2)));
  ASSERT_OK(server_->DefineLibrary("/lib/val", "(merge /obj/val1.o)"));
  ASSERT_OK_AND_ASSIGN(ObjectFile looper, Assemble(R"(
.text
.global main
main:
  push lr
  movi r4, 0
  movi r5, 60
  movi r6, 0
loop:
  call val
  add r4, r4, r0
  addi r5, r5, -1
  bne r5, r6, loop
  mov r0, r4
  pop lr
  ret
)", "looper.o"));
  ASSERT_OK(server_->AddFragment("/obj/looper.o", std::move(looper)));
  ASSERT_OK(server_->DefineMeta("/bin/looper",
                                "(merge /lib/crt0.o /obj/looper.o"
                                " (specialize \"lib-dynamic\" /lib/val))"));

  uint64_t transferred_before = UpgradeStats().frames_transferred->value();
  uint64_t slots_before = UpgradeStats().slots_repointed->value();

  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/looper", {"prog"}));
  Task* task = kernel_.FindTask(id);
  ASSERT_NE(task, nullptr);
  // Budget exhaustion pauses the task mid-loop without faulting it.
  auto paused = kernel_.RunTask(*task, 100);
  ASSERT_FALSE(paused.ok());
  ASSERT_EQ(task->state(), TaskState::kRunnable);

  ASSERT_OK(server_->BeginUpgrade("/lib/val", "(merge /obj/val2.o)"));
  OmosServer::UpgradeStatus status = server_->DrainUpgrade();
  for (int round = 0; round < 32 && status.phase == UpgradePhase::kLinking; ++round) {
    status = server_->DrainUpgrade();
  }
  ASSERT_EQ(status.phase, UpgradePhase::kDraining) << status.error;
  ASSERT_EQ(status.tasks_pending, 1u);

  // Resuming runs the task through its safepoint: the frame transfers and
  // the remaining iterations call v2.
  ASSERT_OK(kernel_.RunTask(*task));
  int sum = task->exit_code();
  EXPECT_GT(sum, 60);
  EXPECT_LT(sum, 180);

  status = DrainToTerminal();
  EXPECT_EQ(status.phase, UpgradePhase::kDone) << status.error;
  EXPECT_GE(UpgradeStats().frames_transferred->value(), transferred_before + 1);
  EXPECT_GE(UpgradeStats().slots_repointed->value(), slots_before + 1);

  server_->ReleaseTask(id);
  kernel_.DestroyTask(id);
  // A fresh exec runs pure v2.
  ASSERT_OK_AND_ASSIGN(TaskId fresh, server_->IntegratedExec("/bin/looper", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(fresh));
  EXPECT_EQ(out.exit_code, 180);
}

// A symbol the new version dropped: live callers get the degradation stub
// (kUpgradeUnavailable) instead of a crash.
TEST_F(UpgradeTest, DeletedSymbolDegradesGracefully) {
  ASSERT_OK_AND_ASSIGN(ObjectFile libv1, Assemble(R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
.global helper
helper:
  movi r0, 7
  ret
)", "deg1.o"));
  // v2 drops helper entirely.
  ASSERT_OK_AND_ASSIGN(ObjectFile libv2, Assemble(R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
)", "deg2.o"));
  ASSERT_OK(server_->AddFragment("/obj/deg1.o", std::move(libv1)));
  ASSERT_OK(server_->AddFragment("/obj/deg2.o", std::move(libv2)));
  ASSERT_OK(server_->DefineLibrary("/lib/deg", "(merge /obj/deg1.o)"));
  // add2 resolves the library early; the burn loop (~400 retired insns)
  // outlasts the transfer-retry backoff so the post-upgrade safepoint fires
  // before the helper call.
  ASSERT_OK_AND_ASSIGN(ObjectFile client, Assemble(R"(
.text
.global main
main:
  push lr
  movi r0, 5
  call add2
  movi r5, 200
  movi r6, 0
burn:
  addi r5, r5, -1
  bne r5, r6, burn
  call helper
  pop lr
  ret
)", "degclient.o"));
  ASSERT_OK(server_->AddFragment("/obj/degclient.o", std::move(client)));
  ASSERT_OK(server_->DefineMeta("/bin/degprog",
                                "(merge /lib/crt0.o /obj/degclient.o"
                                " (specialize \"lib-dynamic\" /lib/deg))"));

  uint64_t degraded_before = UpgradeStats().degraded_bindings->value();

  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/degprog", {"prog"}));
  Task* task = kernel_.FindTask(id);
  ASSERT_NE(task, nullptr);
  // Pause inside the burn loop, after add2 resolved the library.
  auto paused = kernel_.RunTask(*task, 60);
  ASSERT_FALSE(paused.ok());
  ASSERT_EQ(task->state(), TaskState::kRunnable);

  ASSERT_OK(server_->BeginUpgrade("/lib/deg", "(merge /obj/deg2.o)"));
  OmosServer::UpgradeStatus status = server_->DrainUpgrade();
  for (int round = 0; round < 32 && status.phase == UpgradePhase::kLinking; ++round) {
    status = server_->DrainUpgrade();
  }
  ASSERT_EQ(status.phase, UpgradePhase::kDraining) << status.error;

  ASSERT_OK(kernel_.RunTask(*task));
  // helper's slot was rebound to the degradation stub.
  EXPECT_EQ(static_cast<uint32_t>(task->exit_code()), kUpgradeUnavailable);
  EXPECT_GE(UpgradeStats().degraded_bindings->value(), degraded_before + 1);

  server_->ReleaseTask(id);
  kernel_.DestroyTask(id);
  EXPECT_EQ(DrainToTerminal().phase, UpgradePhase::kDone);
}

// Physical frames return to baseline once upgraded tasks are destroyed:
// nothing from the old version leaks. v1 and v2 are the same shape, so the
// cached-master footprint after the upgrade must equal the warm v1
// footprint — the old version's frames are gone, the new version's replace
// them one-for-one.
TEST_F(UpgradeTest, FramesReclaimedToBaseline) {
  ASSERT_OK_AND_ASSIGN(int warm, ExecOnce());
  ASSERT_EQ(warm, 21);
  uint32_t baseline = kernel_.phys().frames_in_use();
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/dynprog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);
  ASSERT_OK(server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib2.o)"));
  server_->DrainUpgrade();
  server_->ReleaseTask(id);
  kernel_.DestroyTask(id);
  ASSERT_EQ(DrainToTerminal().phase, UpgradePhase::kDone);
  ASSERT_OK_AND_ASSIGN(int after, ExecOnce());
  EXPECT_EQ(after, 51);
  // Reclaim dropped the old image; destroying the tasks returns every frame.
  EXPECT_EQ(kernel_.phys().frames_in_use(), baseline);
}

// ---- Upgrade-under-fire: FaultSim kill-points at each phase -----------------

TEST_F(UpgradeTest, KilledDuringLinkAbortsCleanly) {
  FaultPlan plan;
  plan.Arm("upgrade.link", FaultSpec::Nth(1));
  ScopedFaultPlan scoped(std::move(plan));
  ASSERT_OK(server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib2.o)"));
  OmosServer::UpgradeStatus status = DrainToTerminal();
  EXPECT_EQ(status.phase, UpgradePhase::kAborted);
  EXPECT_NE(status.error.find("upgrade.link"), std::string::npos) << status.error;
  // Nothing was touched: the old version still serves.
  ASSERT_OK_AND_ASSIGN(int code, ExecOnce());
  EXPECT_EQ(code, 21);
}

TEST_F(UpgradeTest, KilledDuringRepointAbortsConsistently) {
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/dynprog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);
  FaultPlan plan;
  plan.Arm("upgrade.repoint", FaultSpec::Nth(1));
  ScopedFaultPlan scoped(std::move(plan));
  ASSERT_OK(server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib2.o)"));
  OmosServer::UpgradeStatus status = DrainToTerminal();
  EXPECT_EQ(status.phase, UpgradePhase::kAborted);
  EXPECT_NE(status.error.find("upgrade.repoint"), std::string::npos) << status.error;
  server_->ReleaseTask(id);
  kernel_.DestroyTask(id);
  // The kill fired before any slot was rewritten: old version intact.
  ASSERT_OK_AND_ASSIGN(int code, ExecOnce());
  EXPECT_EQ(code, 21);
}

TEST_F(UpgradeTest, KilledTransferDefersAndRetries) {
  ASSERT_OK_AND_ASSIGN(ObjectFile val1, Assemble(R"(
.text
.global val
val:
  movi r0, 1
  ret
)", "fval1.o"));
  ASSERT_OK_AND_ASSIGN(ObjectFile val2, Assemble(R"(
.text
.global val
val:
  movi r0, 3
  ret
)", "fval2.o"));
  ASSERT_OK(server_->AddFragment("/obj/fval1.o", std::move(val1)));
  ASSERT_OK(server_->AddFragment("/obj/fval2.o", std::move(val2)));
  ASSERT_OK(server_->DefineLibrary("/lib/fval", "(merge /obj/fval1.o)"));
  // A long loop (600 iterations, ~6 insns each) so the task passes many
  // safepoints after the deferred transfer's retry window (256 insns).
  ASSERT_OK_AND_ASSIGN(ObjectFile looper, Assemble(R"(
.text
.global main
main:
  push lr
  movi r4, 0
  movi r5, 600
  movi r6, 0
loop:
  call val
  add r4, r4, r0
  addi r5, r5, -1
  bne r5, r6, loop
  mov r0, r4
  pop lr
  ret
)", "flooper.o"));
  ASSERT_OK(server_->AddFragment("/obj/flooper.o", std::move(looper)));
  ASSERT_OK(server_->DefineMeta("/bin/flooper",
                                "(merge /lib/crt0.o /obj/flooper.o"
                                " (specialize \"lib-dynamic\" /lib/fval))"));

  uint64_t deferred_before = UpgradeStats().transfers_deferred->value();

  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/flooper", {"prog"}));
  Task* task = kernel_.FindTask(id);
  ASSERT_NE(task, nullptr);
  auto paused = kernel_.RunTask(*task, 100);
  ASSERT_FALSE(paused.ok());
  ASSERT_EQ(task->state(), TaskState::kRunnable);

  // The first transfer attempt is killed; the safepoint defers and a later
  // safepoint (past the retry window) completes the migration.
  FaultPlan plan;
  plan.Arm("upgrade.transfer", FaultSpec::Nth(1));
  ScopedFaultPlan scoped(std::move(plan));
  ASSERT_OK(server_->BeginUpgrade("/lib/fval", "(merge /obj/fval2.o)"));
  OmosServer::UpgradeStatus status = server_->DrainUpgrade();
  for (int round = 0; round < 32 && status.phase == UpgradePhase::kLinking; ++round) {
    status = server_->DrainUpgrade();
  }
  ASSERT_EQ(status.phase, UpgradePhase::kDraining) << status.error;

  ASSERT_OK(kernel_.RunTask(*task));
  int sum = task->exit_code();
  EXPECT_GT(sum, 600);   // some iterations ran v2
  EXPECT_LT(sum, 1800);  // but not all of them
  EXPECT_GE(UpgradeStats().transfers_deferred->value(), deferred_before + 1);

  server_->ReleaseTask(id);
  kernel_.DestroyTask(id);
  EXPECT_EQ(DrainToTerminal().phase, UpgradePhase::kDone);
}

TEST_F(UpgradeTest, KilledReclaimRetreatsAndRetries) {
  FaultPlan plan;
  plan.Arm("upgrade.reclaim", FaultSpec::Nth(1));
  ScopedFaultPlan scoped(std::move(plan));
  ASSERT_OK(server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib2.o)"));
  // The first reclaim attempt dies, the phase retreats to draining, and
  // DrainUpgrade's retry loop completes it.
  OmosServer::UpgradeStatus status = DrainToTerminal();
  EXPECT_EQ(status.phase, UpgradePhase::kDone) << status.error;
  EXPECT_GE(FaultSim::Fires("upgrade.reclaim"), 1u);
  ASSERT_OK_AND_ASSIGN(int code, ExecOnce());
  EXPECT_EQ(code, 51);
}

}  // namespace
}  // namespace omos
