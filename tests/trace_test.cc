// omtrace tests: ring overflow semantics, concurrent emission (TSan lane),
// the disabled fast path, Chrome JSON round-trip, the profiler ring, and
// the kIntrospect wire protocol against locally-read counters.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/server.h"
#include "src/ipc/channel.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "tests/helpers.h"

namespace omos {
namespace {

// Each test runs in its own process (gtest_discover_tests), but be tidy
// anyway: leave tracing off and rings clear on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSetEnabled(false);
    TraceClear();
  }
  void TearDown() override {
    TraceSetEnabled(false);
    TraceClear();
    CycleProfiler::Stop();
    CycleProfiler::Clear();
  }
};

TEST_F(TraceTest, RingOverflowKeepsNewest) {
  TraceSetEnabled(true);
  const size_t total = kTraceRingCapacity + 500;
  for (size_t i = 0; i < total; ++i) {
    TraceInstant("overflow.probe", std::to_string(i));
  }
  std::vector<TraceEvent> events = TraceSnapshot();
  size_t seen = 0;
  size_t min_index = total;
  for (const TraceEvent& ev : events) {
    if (std::string_view(ev.name) != "overflow.probe") {
      continue;
    }
    ++seen;
    size_t index = std::stoul(ev.detail);
    if (index < min_index) {
      min_index = index;
    }
  }
  // A full ring of the newest events survives; everything older is gone.
  EXPECT_EQ(seen, kTraceRingCapacity);
  EXPECT_EQ(min_index, total - kTraceRingCapacity);
}

TEST_F(TraceTest, ConcurrentEmitIsRaceFree) {
  TraceSetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;  // > ring capacity: wraps while read
  std::atomic<bool> stop{false};
  // Reader thread snapshots continuously while writers wrap their rings;
  // under OMOS_SANITIZE=thread this is the race check.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceEvent& ev : TraceSnapshot()) {
        ASSERT_NE(ev.name, nullptr);
        std::string_view name(ev.name);
        ASSERT_TRUE(name == "mt.span" || name == "mt.instant") << name;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("mt.span", std::to_string(t));
        span.AddSimCycles(i, t);
        TraceInstant("mt.instant");
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  std::vector<TraceEvent> events = TraceSnapshot();
  EXPECT_FALSE(events.empty());
  EXPECT_LE(events.size(), kThreads * kTraceRingCapacity + kTraceRingCapacity);
  // Snapshot is time-sorted.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST_F(TraceTest, DisabledPathEmitsNothing) {
  ASSERT_FALSE(TraceEnabled());
  {
    TraceSpan span("off.span", "never recorded");
    span.AddSimCycles(1, 2);
    EXPECT_FALSE(span.armed());
  }
  TraceInstant("off.instant");
  TraceInstant("off.instant", "detail", 3, 4);
  EXPECT_TRUE(TraceSnapshot().empty());
  // And the export paths degrade to empty documents, not errors.
  EXPECT_NE(TraceToChromeJson().find("\"traceEvents\""), std::string::npos);
  ASSERT_OK_AND_ASSIGN(std::vector<ParsedTraceEvent> parsed,
                       ParseChromeTrace(TraceToChromeJson()));
  EXPECT_TRUE(parsed.empty());
}

TEST_F(TraceTest, CancelledSpanEmitsNothing) {
  TraceSetEnabled(true);
  {
    TraceSpan span("cancel.me", "about to be dropped");
    span.Cancel();
  }
  for (const TraceEvent& ev : TraceSnapshot()) {
    EXPECT_NE(std::string_view(ev.name), "cancel.me");
  }
}

TEST_F(TraceTest, ChromeJsonRoundTrips) {
  TraceSetEnabled(true);
  {
    TraceSpan span("roundtrip.work", "key=\"/bin/ls\"");  // exercises escaping
    span.AddSimCycles(123, 45);
  }
  TraceInstant("roundtrip.mark", "hello", 7, 8);
  std::string json = TraceToChromeJson();
  ASSERT_OK_AND_ASSIGN(std::vector<ParsedTraceEvent> parsed, ParseChromeTrace(json));

  const ParsedTraceEvent* span = nullptr;
  const ParsedTraceEvent* mark = nullptr;
  for (const ParsedTraceEvent& ev : parsed) {
    if (ev.name == "roundtrip.work") span = &ev;
    if (ev.name == "roundtrip.mark") mark = &ev;
  }
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->ph, "X");
  EXPECT_EQ(span->cat, "roundtrip");
  EXPECT_EQ(span->detail, "key=\"/bin/ls\"");
  EXPECT_EQ(span->sim_user, 123u);
  EXPECT_EQ(span->sim_sys, 45u);
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(mark->ph, "i");
  EXPECT_EQ(mark->detail, "hello");
  EXPECT_EQ(mark->sim_user, 7u);
  EXPECT_EQ(mark->sim_sys, 8u);
  EXPECT_GE(mark->ts_us, span->ts_us);

  // Malformed documents are protocol errors, not crashes.
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\":[{]}").ok());
  EXPECT_FALSE(ParseChromeTrace("not json").ok());
}

TEST_F(TraceTest, ProfilerRingAndPeriodMask) {
  CycleProfiler::Start(/*period=*/100);  // rounds down to 64
  EXPECT_TRUE(CycleProfiler::enabled());
  EXPECT_EQ(CycleProfiler::mask(), 63u);
  CycleProfiler::RecordSample(7, 0x1000);
  CycleProfiler::RecordSample(7, 0x1004);
  CycleProfiler::RecordSample(9, 0x2000);
  std::vector<CycleProfiler::Sample> samples = CycleProfiler::Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].task_id, 7u);
  EXPECT_EQ(samples[0].pc, 0x1000u);
  EXPECT_EQ(samples[2].task_id, 9u);
  CycleProfiler::Clear();
  EXPECT_TRUE(CycleProfiler::Samples().empty());
  CycleProfiler::Stop();
  EXPECT_FALSE(CycleProfiler::enabled());
}

// --- Introspect wire protocol --------------------------------------------

constexpr char kCrt0[] = R"(
.text
.global _start
_start:
  call main
  sys 0
)";

constexpr char kMain[] = R"(
.text
.global main
main:
  movi r0, 0
  ret
)";

class IntrospectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OmosServer>(kernel_);
    ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(kCrt0, "crt0.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(kMain, "main.o"));
    ASSERT_OK(server_->AddFragment("/lib/crt0.o", std::move(crt0)));
    ASSERT_OK(server_->AddFragment("/obj/main.o", std::move(main_obj)));
    ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/main.o)"));
  }
  void TearDown() override {
    TraceSetEnabled(false);
    TraceClear();
  }

  OmosReply Introspect(Channel& channel, const std::string& cmd, uint32_t handle = 0) {
    OmosRequest request;
    request.op = OmosOp::kIntrospect;
    request.path = cmd;
    request.task_handle = handle;
    auto reply = channel.Call(request, nullptr);
    EXPECT_TRUE(reply.ok()) << reply.error().ToString();
    return reply.ok() ? std::move(reply).value() : OmosReply{};
  }

  Kernel kernel_;
  std::unique_ptr<OmosServer> server_;
};

TEST_F(IntrospectTest, SnapshotEqualsLocallyReadCounters) {
  // Generate cache traffic: one miss (cold build), one hit (warm).
  uint64_t work = 0;
  ASSERT_OK(server_->Instantiate("/bin/prog", Specialization{}, &work));
  ASSERT_OK(server_->Instantiate("/bin/prog", Specialization{}, &work));

  Channel channel = server_->MakeChannel();
  OmosReply reply = Introspect(channel, "stats");
  ASSERT_TRUE(reply.ok) << reply.error;
  ASSERT_FALSE(reply.metrics.empty());

  auto wire_value = [&](std::string_view name) -> uint64_t {
    for (const auto& [metric, value] : reply.metrics) {
      if (metric == name) {
        return value;
      }
    }
    ADD_FAILURE() << "metric missing from wire snapshot: " << name;
    return ~0ull;
  };

  // The wire snapshot must agree with the counters read directly.
  const CacheStats& local = server_->cache_stats();
  EXPECT_EQ(wire_value("cache.hits"), local.hits.load());
  EXPECT_EQ(wire_value("cache.misses"), local.misses.load());
  EXPECT_EQ(wire_value("cache.inserts"), local.inserts.load());
  EXPECT_EQ(wire_value("cache.bytes_cached"), local.bytes_cached.load());
  EXPECT_GE(local.hits.load(), 1u);
  EXPECT_GE(local.misses.load(), 1u);
  // The introspect request itself went through the instrumented path.
  EXPECT_GE(wire_value("server.requests"), 1u);
  EXPECT_GE(wire_value("ipc.calls"), 1u);

  // Text form carries the same counters.
  OmosReply text = Introspect(channel, "stats-text");
  ASSERT_TRUE(text.ok);
  EXPECT_NE(text.payload.find("cache.hits"), std::string::npos);
  EXPECT_NE(text.payload.find("server.requests"), std::string::npos);
}

TEST_F(IntrospectTest, PlacementsReportsLayoutAndConflicts) {
  uint64_t work = 0;
  ASSERT_OK(server_->Instantiate("/bin/prog", Specialization{}, &work));
  Channel channel = server_->MakeChannel();
  OmosReply reply = Introspect(channel, "placements");
  ASSERT_TRUE(reply.ok) << reply.error;
  // Generation header, then one place line per live object with its stamp.
  EXPECT_NE(reply.payload.find("layout generation "), std::string::npos);
  EXPECT_NE(reply.payload.find("place T="), std::string::npos);
  EXPECT_NE(reply.payload.find("gen="), std::string::npos);
  EXPECT_EQ(reply.payload.find("conflict "), std::string::npos);  // none yet
}

TEST_F(IntrospectTest, TraceControlAndExportOverWire) {
  Channel channel = server_->MakeChannel();
  ASSERT_TRUE(Introspect(channel, "trace-start").ok);
  EXPECT_TRUE(TraceEnabled());

  uint64_t work = 0;
  ASSERT_OK(server_->Instantiate("/bin/prog", Specialization{}, &work));

  OmosReply trace = Introspect(channel, "trace");
  ASSERT_TRUE(trace.ok);
  ASSERT_OK_AND_ASSIGN(std::vector<ParsedTraceEvent> parsed,
                       ParseChromeTrace(trace.payload));
  bool saw_instantiate = false;
  bool saw_link = false;
  for (const ParsedTraceEvent& ev : parsed) {
    if (ev.name == "server.instantiate") saw_instantiate = true;
    if (ev.name == "link.image") saw_link = true;
  }
  EXPECT_TRUE(saw_instantiate);
  EXPECT_TRUE(saw_link);

  OmosReply summary = Introspect(channel, "trace-summary");
  ASSERT_TRUE(summary.ok);
  EXPECT_NE(summary.payload.find("server.instantiate"), std::string::npos);

  ASSERT_TRUE(Introspect(channel, "trace-stop").ok);
  EXPECT_FALSE(TraceEnabled());
  ASSERT_TRUE(Introspect(channel, "trace-clear").ok);
  EXPECT_TRUE(TraceSnapshot().empty());
}

TEST_F(IntrospectTest, ProfileOverWire) {
  Channel channel = server_->MakeChannel();
  // period request rides in task_handle; 0 -> default 64. Use 1 so even a
  // four-instruction program yields samples.
  ASSERT_TRUE(Introspect(channel, "profile-start", /*handle=*/1).ok);
  ASSERT_TRUE(CycleProfiler::enabled());

  ASSERT_OK_AND_ASSIGN(TaskId id,
                       server_->IntegratedExec("/bin/prog", {"prog"}));
  Task* task = kernel_.FindTask(id);
  ASSERT_NE(task, nullptr);
  ASSERT_OK(kernel_.RunTask(*task));

  OmosReply profile = Introspect(channel, "profile", static_cast<uint32_t>(id));
  ASSERT_TRUE(profile.ok) << profile.error;
  EXPECT_NE(profile.payload.find("profile task="), std::string::npos);
  EXPECT_NE(profile.payload.find("samples="), std::string::npos);
  // The program spends its time in _start/main; at least one must resolve.
  bool resolved = profile.payload.find("_start") != std::string::npos ||
                  profile.payload.find("main") != std::string::npos;
  EXPECT_TRUE(resolved) << profile.payload;

  ASSERT_TRUE(Introspect(channel, "profile-stop").ok);
  EXPECT_FALSE(CycleProfiler::enabled());

  OmosReply unknown = Introspect(channel, "profile", /*handle=*/424242);
  EXPECT_FALSE(unknown.ok);

  server_->ReleaseTask(id);
  kernel_.DestroyTask(id);
}

TEST_F(IntrospectTest, UnknownSubcommandIsError) {
  Channel channel = server_->MakeChannel();
  OmosReply reply = Introspect(channel, "no-such-subcommand");
  EXPECT_FALSE(reply.ok);
  EXPECT_FALSE(reply.error.empty());
}

}  // namespace
}  // namespace omos
