// Persistent image store (PR 6): SimFs durability semantics, the store
// record codec, crash-safe journal publish/replay, store-backed server
// restart with byte-identical images, and the seeded crash-point sweep.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/core/server.h"
#include "src/objfmt/bytes.h"
#include "src/os/sim_fs.h"
#include "src/store/image_store.h"
#include "src/support/faultsim.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "tests/helpers.h"

namespace omos {
namespace {

constexpr char kStoreRoot[] = "/omos/store";

constexpr char kCrt0[] = R"(
.text
.global _start
_start:
  call main
  sys 0
)";

constexpr char kAddLib[] = R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

// main: exit(mul3(add2(5))) = 21
constexpr char kClient[] = R"(
.text
.global main
main:
  push lr
  movi r0, 5
  call add2
  call mul3
  pop lr
  ret
)";

// main: counter += 1; exit(counter) = 8. Carries initialized data so the
// cached image has a CoW data master.
constexpr char kCounter[] = R"(
.text
.global main
main:
  lea r1, counter
  ld r0, [r1+0]
  addi r0, r0, 1
  st r0, [r1+0]
  ld r0, [r1+0]
  ret
.data
.align 4
counter: .word 7
)";

const char* const kPrograms[] = {"/bin/ls", "/bin/cat", "/bin/ctr"};

// The fixed world every restart/crash test rebuilds: three programs, one of
// them linking a constrained library (a StoredDep to verify on adoption),
// one carrying initialized data (a CoW master to resurrect).
Result<void> Populate(OmosServer& server) {
  OMOS_TRY(ObjectFile crt0, Assemble(kCrt0, "crt0.o"));
  OMOS_TRY(ObjectFile lib, Assemble(kAddLib, "addlib.o"));
  OMOS_TRY(ObjectFile client, Assemble(kClient, "client.o"));
  OMOS_TRY(ObjectFile counter, Assemble(kCounter, "counter.o"));
  OMOS_TRY_VOID(server.AddFragment("/lib/crt0.o", std::move(crt0)));
  OMOS_TRY_VOID(server.AddFragment("/obj/addlib.o", std::move(lib)));
  OMOS_TRY_VOID(server.AddFragment("/obj/client.o", std::move(client)));
  OMOS_TRY_VOID(server.AddFragment("/obj/counter.o", std::move(counter)));
  OMOS_TRY_VOID(server.DefineLibrary("/lib/addlib",
                                     "(constraint-list \"T\" 0x1000000)\n"
                                     "(merge /obj/addlib.o)"));
  OMOS_TRY_VOID(server.DefineMeta("/bin/ls", "(merge /lib/crt0.o /obj/client.o /lib/addlib)"));
  OMOS_TRY_VOID(server.DefineMeta("/bin/cat", "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  OMOS_TRY_VOID(server.DefineMeta("/bin/ctr", "(merge /lib/crt0.o /obj/counter.o)"));
  return OkResult();
}

// Byte + layout identity of a cached image: bases, entry, and the linked
// text/data streams. Two images with equal fingerprints are interchangeable
// down to every mapped byte and address.
uint64_t ImageFingerprint(const CachedImage& cached) {
  ByteWriter w;
  w.U32(cached.image.text_base);
  w.U32(cached.image.data_base);
  w.U32(cached.image.bss_size);
  w.U32(cached.image.entry);
  w.Raw(cached.image.text);
  w.Raw(cached.image.data);
  return Fnv1aBytes(w.bytes().data(), w.bytes().size());
}

StoreRecord SampleRecord() {
  StoreRecord record;
  record.cache_key = MakeCacheKey("/bin/x", "");
  record.fingerprint = 0x1234567890abcdefULL;
  record.build_cost = 4242;
  record.image.name = record.cache_key;
  record.image.text_base = 0x400000;
  record.image.data_base = 0x500000;
  record.image.bss_size = 16;
  record.image.entry = 0x400004;
  record.image.text = {0x10, 0x20, 0x30, 0x40, 0x50};
  record.image.data = {0x99, 0x88};
  record.image.symbols.push_back(ImageSymbol{"main", 0x400004, 4, SectionKind::kText});
  record.deps.push_back(StoredDep{"libkey", "/lib/l", 0x1000000, 0x1100000});
  record.stub_slots.push_back(StoredStubSlot{0, "__slot_f", "/lib/l", "f"});
  return record;
}

// ---- SimFs durability model -------------------------------------------------

TEST(SimFsDurability, DropUnsyncedRevertsToLastSyncedState) {
  SimFs fs;
  // Unsynced new file: vanishes at power loss.
  ASSERT_OK(fs.TryWriteUnsynced("/a", std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(fs.Exists("/a"));
  // Durable file with an unsynced append: reverts to the durable content.
  fs.WriteFile("/b", std::string_view("base"));
  ASSERT_OK(fs.TryAppendUnsynced("/b", {'+', '+'}));
  // Unsynced file made durable by fsync: survives.
  ASSERT_OK(fs.TryWriteUnsynced("/c", std::vector<uint8_t>{7}));
  ASSERT_OK(fs.Fsync("/c"));

  fs.DropUnsynced();

  EXPECT_FALSE(fs.Exists("/a"));
  ASSERT_OK_AND_ASSIGN(const SimFile* b, fs.Lookup("/b"));
  EXPECT_EQ(std::string(b->bytes.begin(), b->bytes.end()), "base");
  ASSERT_OK_AND_ASSIGN(const SimFile* c, fs.Lookup("/c"));
  EXPECT_EQ(c->bytes, (std::vector<uint8_t>{7}));
}

TEST(SimFsDurability, RenameMovesDurabilityStateWithTheFile) {
  SimFs fs;
  // The classic zero-length-file bug: rename is durable metadata, but a
  // never-synced payload still dies with the page cache — the whole file
  // vanishes here (no zero-length remnant to model).
  ASSERT_OK(fs.TryWriteUnsynced("/tmp1", std::vector<uint8_t>{1}));
  ASSERT_OK(fs.Rename("/tmp1", "/pub1"));
  // Fsync-then-rename (the store's publish protocol): survives.
  ASSERT_OK(fs.TryWriteUnsynced("/tmp2", std::vector<uint8_t>{2}));
  ASSERT_OK(fs.Fsync("/tmp2"));
  ASSERT_OK(fs.Rename("/tmp2", "/pub2"));

  fs.DropUnsynced();

  EXPECT_FALSE(fs.Exists("/pub1"));
  EXPECT_FALSE(fs.Exists("/tmp1"));
  ASSERT_OK_AND_ASSIGN(const SimFile* pub2, fs.Lookup("/pub2"));
  EXPECT_EQ(pub2->bytes, (std::vector<uint8_t>{2}));
}

TEST(SimFsDurability, FsyncAndRenameErrorCases) {
  SimFs fs;
  EXPECT_EQ(fs.Fsync("/missing").error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs.Rename("/missing", "/x").error().code(), ErrorCode::kNotFound);
  fs.Mkdir("/dir");
  EXPECT_EQ(fs.Rename("/dir", "/x").error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs.TryAppendUnsynced("/dir", {1}).error().code(), ErrorCode::kInvalidArgument);
  // Faults: fsync and rename fail without mutating anything.
  fs.WriteFile("/f", std::string_view("x"));
  {
    ScopedFaultPlan plan(FaultPlan()
                             .Arm("fs.fsync", FaultSpec::Nth(1))
                             .Arm("fs.rename", FaultSpec::Nth(1)));
    EXPECT_EQ(fs.Fsync("/f").error().code(), ErrorCode::kIoError);
    EXPECT_EQ(fs.Rename("/f", "/g").error().code(), ErrorCode::kIoError);
  }
  EXPECT_TRUE(fs.Exists("/f"));
  EXPECT_FALSE(fs.Exists("/g"));
}

// ---- Record codec -----------------------------------------------------------

TEST(StoreCodec, RecordRoundTrips) {
  StoreRecord record = SampleRecord();
  std::vector<uint8_t> bytes = EncodeStoreRecord(record);
  ASSERT_OK_AND_ASSIGN(StoreRecord back, DecodeStoreRecord(bytes));
  EXPECT_EQ(back.cache_key, record.cache_key);
  EXPECT_EQ(back.fingerprint, record.fingerprint);
  EXPECT_EQ(back.build_cost, record.build_cost);
  EXPECT_EQ(back.image.text_base, record.image.text_base);
  EXPECT_EQ(back.image.data_base, record.image.data_base);
  EXPECT_EQ(back.image.bss_size, record.image.bss_size);
  EXPECT_EQ(back.image.entry, record.image.entry);
  EXPECT_EQ(back.image.text, record.image.text);
  EXPECT_EQ(back.image.data, record.image.data);
  ASSERT_EQ(back.deps.size(), 1u);
  EXPECT_EQ(back.deps[0].cache_key, "libkey");
  EXPECT_EQ(back.deps[0].text_base, 0x1000000u);
  ASSERT_EQ(back.stub_slots.size(), 1u);
  EXPECT_EQ(back.stub_slots[0].slot_symbol, "__slot_f");
  // The decoded image is queryable (symbol index rebuilt by the codec).
  ASSERT_NE(back.image.FindSymbol("main"), nullptr);
  EXPECT_EQ(back.image.FindSymbol("main")->addr, 0x400004u);

  std::vector<uint8_t> garbage{'n', 'o', 'p', 'e'};
  EXPECT_FALSE(DecodeStoreRecord(garbage).ok());
}

// ---- Journal basics ---------------------------------------------------------

TEST(ImageStoreTest, PutGetAndReopenPersistence) {
  SimFs disk;
  CostModel costs;
  StoreRecord record = SampleRecord();
  {
    ImageStore store(disk, kStoreRoot, &costs);
    ASSERT_OK(store.Open());
    uint64_t cycles = 0;
    ASSERT_OK(store.Put(record, &cycles));
    EXPECT_GT(cycles, 0u);  // journaling + fsyncs are billed
    EXPECT_EQ(store.entry_count(), 1u);
    ASSERT_OK_AND_ASSIGN(auto hit, store.Get(record.cache_key, record.fingerprint));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->image.text, record.image.text);
    // Same fingerprint slot, different key: a collision is a miss, never a
    // wrong image.
    ASSERT_OK_AND_ASSIGN(auto collide, store.Get("other-key", record.fingerprint));
    EXPECT_FALSE(collide.has_value());
    // Different fingerprint (stale inputs): miss.
    ASSERT_OK_AND_ASSIGN(auto stale, store.Get(record.cache_key, record.fingerprint + 1));
    EXPECT_FALSE(stale.has_value());
    EXPECT_EQ(store.stats().hits.load(), 1u);
    EXPECT_EQ(store.stats().misses.load(), 2u);
  }
  // A clean shutdown needs no recovery, but replay must reproduce the index.
  ImageStore reopened(disk, kStoreRoot);
  ASSERT_OK(reopened.Open());
  EXPECT_EQ(reopened.entry_count(), 1u);
  EXPECT_EQ(reopened.stats().recovered_commits.load(), 0u);
  EXPECT_EQ(reopened.stats().torn_tails.load(), 0u);
  ASSERT_OK_AND_ASSIGN(auto hit, reopened.Get(record.cache_key, record.fingerprint));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->image.data, record.image.data);
}

TEST(ImageStoreTest, SnapshotRoundTripsAndReplacesAtomically) {
  SimFs disk;
  ImageStore store(disk, kStoreRoot);
  ASSERT_OK(store.Open());
  EXPECT_EQ(store.LoadSnapshot().error().code(), ErrorCode::kNotFound);
  ASSERT_OK(store.PutSnapshot("state v1"));
  ASSERT_OK_AND_ASSIGN(std::string text, store.LoadSnapshot());
  EXPECT_EQ(text, "state v1");
  ASSERT_OK(store.PutSnapshot("state v2"));
  ASSERT_OK_AND_ASSIGN(std::string text2, store.LoadSnapshot());
  EXPECT_EQ(text2, "state v2");
}

TEST(ImageStoreTest, TornJournalTailIsTruncatedAndRecovered) {
  SimFs disk;
  StoreRecord record = SampleRecord();
  {
    ImageStore store(disk, kStoreRoot);
    ASSERT_OK(store.Open());
    ASSERT_OK(store.Put(record));
  }
  // Tear the journal mid-record: chop the tail off the final COMMIT. The
  // intent and the fsynced data file survive, so replay must truncate the
  // tail and roll the intent forward.
  std::string journal = StrCat(kStoreRoot, "/journal");
  ASSERT_OK_AND_ASSIGN(const SimFile* file, disk.Lookup(journal));
  std::vector<uint8_t> torn(file->bytes.begin(), file->bytes.end() - 3);
  disk.WriteFile(journal, std::move(torn));
  {
    ImageStore store(disk, kStoreRoot);
    ASSERT_OK(store.Open());
    EXPECT_EQ(store.stats().torn_tails.load(), 1u);
    EXPECT_EQ(store.stats().recovered_commits.load(), 1u);
    EXPECT_EQ(store.entry_count(), 1u);
    ASSERT_OK_AND_ASSIGN(auto hit, store.Get(record.cache_key, record.fingerprint));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->image.text, record.image.text);
  }
  // The truncation and the re-appended commit are durable: a third open
  // sees a clean journal.
  ImageStore store(disk, kStoreRoot);
  ASSERT_OK(store.Open());
  EXPECT_EQ(store.stats().torn_tails.load(), 0u);
  EXPECT_EQ(store.stats().recovered_commits.load(), 0u);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(ImageStoreTest, GarbageJournalTailIsCutOff) {
  SimFs disk;
  StoreRecord record = SampleRecord();
  {
    ImageStore store(disk, kStoreRoot);
    ASSERT_OK(store.Open());
    ASSERT_OK(store.Put(record));
  }
  std::string journal = StrCat(kStoreRoot, "/journal");
  ASSERT_OK(disk.TryAppendUnsynced(journal, {0xDE, 0xAD, 0xBE, 0xEF, 0x42}));
  ASSERT_OK(disk.Fsync(journal));
  ImageStore store(disk, kStoreRoot);
  ASSERT_OK(store.Open());
  EXPECT_EQ(store.stats().torn_tails.load(), 1u);
  EXPECT_EQ(store.entry_count(), 1u);  // the committed record is untouched
}

TEST(ImageStoreTest, CorruptDataFileIsTombstonedOnGet) {
  SimFs disk;
  StoreRecord record = SampleRecord();
  {
    ImageStore store(disk, kStoreRoot);
    ASSERT_OK(store.Open());
    ASSERT_OK(store.Put(record));
  }
  // Rot one byte of the published data file.
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> names, disk.ListDir(StrCat(kStoreRoot, "/data")));
  ASSERT_EQ(names.size(), 1u);
  std::string path = StrCat(kStoreRoot, "/data/", names[0]);
  ASSERT_OK_AND_ASSIGN(const SimFile* file, disk.Lookup(path));
  std::vector<uint8_t> rotted = file->bytes;
  rotted[rotted.size() / 2] ^= 0x40;
  disk.WriteFile(path, std::move(rotted));

  ImageStore store(disk, kStoreRoot);
  ASSERT_OK(store.Open());
  // Replay validates committed records: the rotted one is dropped loudly.
  EXPECT_EQ(store.stats().lost_records.load(), 1u);
  EXPECT_EQ(store.entry_count(), 0u);
  ASSERT_OK_AND_ASSIGN(auto hit, store.Get(record.cache_key, record.fingerprint));
  EXPECT_FALSE(hit.has_value());
}

TEST(ImageStoreTest, FsFaultsFailPutCleanlyWithoutCrashing) {
  for (const char* site : {"fs.fsync", "fs.rename"}) {
    SimFs disk;
    StoreRecord record = SampleRecord();
    ImageStore store(disk, kStoreRoot);
    ASSERT_OK(store.Open());
    {
      ScopedFaultPlan plan(FaultPlan().Arm(site, FaultSpec::Nth(1)));
      auto put = store.Put(record);
      ASSERT_FALSE(put.ok()) << site;
      EXPECT_EQ(put.error().code(), ErrorCode::kIoError) << site;
    }
    EXPECT_FALSE(store.crashed()) << site;
    EXPECT_EQ(store.stats().put_failures.load(), 1u) << site;
    EXPECT_EQ(store.entry_count(), 0u) << site;
    // The store stays usable: the same record publishes fine afterwards.
    ASSERT_OK(store.Put(record));
    ASSERT_OK_AND_ASSIGN(auto hit, store.Get(record.cache_key, record.fingerprint));
    EXPECT_TRUE(hit.has_value()) << site;
  }
}

TEST(ImageStoreTest, InvalidatePrefixTombstonesMatchingKeys) {
  SimFs disk;
  ImageStore store(disk, kStoreRoot);
  ASSERT_OK(store.Open());
  StoreRecord a = SampleRecord();
  a.cache_key = MakeCacheKey("/bin/a", "");
  a.fingerprint = 111;
  StoreRecord b = SampleRecord();
  b.cache_key = MakeCacheKey("/bin/b", "");
  b.fingerprint = 222;
  ASSERT_OK(store.Put(a));
  ASSERT_OK(store.Put(b));
  ASSERT_OK_AND_ASSIGN(size_t n,
                       store.InvalidatePrefix(StrCat("/bin/a", kCacheKeySep)));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(store.entry_count(), 1u);
  ASSERT_OK_AND_ASSIGN(auto gone, store.Get(a.cache_key, a.fingerprint));
  EXPECT_FALSE(gone.has_value());
  ASSERT_OK_AND_ASSIGN(auto kept, store.Get(b.cache_key, b.fingerprint));
  EXPECT_TRUE(kept.has_value());
  // Tombstones are durable: the invalidated record stays dead after reopen.
  ImageStore reopened(disk, kStoreRoot);
  ASSERT_OK(reopened.Open());
  EXPECT_EQ(reopened.entry_count(), 1u);
}

// Crash matrix: kill the "process" at each of Put's journal steps in turn
// and recover. Steps 1-5 (before the rename publishes the data file) must
// roll back to a miss; steps 6-8 (data published) must roll forward to a
// hit with byte-identical content. Never a wrong image.
TEST(ImageStoreTest, CrashAtEveryPutStepRecoversConsistently) {
  for (uint64_t k = 1; k <= 8; ++k) {
    SimFs disk;
    StoreRecord record = SampleRecord();
    {
      ImageStore store(disk, kStoreRoot);
      ASSERT_OK(store.Open());
      ScopedFaultPlan plan(FaultPlan().Arm("store.crash", FaultSpec::Nth(k).WithMaxFires(1)));
      auto put = store.Put(record);
      ASSERT_FALSE(put.ok()) << "crash point " << k;
      EXPECT_EQ(put.error().code(), ErrorCode::kUnavailable);
      EXPECT_TRUE(store.crashed());
      // Sticky: the dead process writes (and reads) nothing more.
      EXPECT_EQ(store.Put(record).error().code(), ErrorCode::kUnavailable);
      EXPECT_EQ(store.Get(record.cache_key, record.fingerprint).error().code(),
                ErrorCode::kUnavailable);
    }
    disk.DropUnsynced();  // the power actually goes out

    ImageStore recovered(disk, kStoreRoot);
    SCOPED_TRACE(testing::Message() << "crash point " << k);
    ASSERT_OK(recovered.Open());
    ASSERT_OK_AND_ASSIGN(auto hit, recovered.Get(record.cache_key, record.fingerprint));
    if (k <= 5) {
      EXPECT_FALSE(hit.has_value()) << "crash point " << k;
      EXPECT_EQ(recovered.entry_count(), 0u);
      if (k >= 3) {
        // The intent reached the disk but the data did not: rolled back.
        EXPECT_EQ(recovered.stats().rolled_back.load(), 1u) << "crash point " << k;
      }
    } else {
      ASSERT_TRUE(hit.has_value()) << "crash point " << k;
      EXPECT_EQ(hit->image.text, record.image.text);
      EXPECT_EQ(hit->image.data, record.image.data);
      if (k <= 7) {
        // Data durable, commit lost: replay rolled the intent forward.
        EXPECT_EQ(recovered.stats().recovered_commits.load(), 1u) << "crash point " << k;
      }
    }
    EXPECT_EQ(recovered.stats().lost_records.load(), 0u) << "crash point " << k;
  }
}

// ---- Store-backed server restart --------------------------------------------

class StoreServerTest : public ::testing::Test {
 protected:
  struct Golden {
    uint64_t fingerprint = 0;
    uint32_t text_base = 0;
    uint32_t data_base = 0;
  };

  // Instantiates every program and records identity fingerprints.
  Result<std::vector<Golden>> InstantiateAll(OmosServer& server) {
    std::vector<Golden> out;
    for (const char* path : kPrograms) {
      uint64_t work = 0;
      OMOS_TRY(const CachedImage* image, server.Instantiate(path, Specialization{}, &work));
      out.push_back(Golden{ImageFingerprint(*image), image->image.text_base,
                           image->image.data_base});
    }
    return out;
  }
};

TEST_F(StoreServerTest, RestartServesByteIdenticalImagesFromStore) {
  SimFs disk;  // the disk outlives both server generations
  std::vector<Golden> golden;
  {
    Kernel kernel;
    ImageStore store(disk, kStoreRoot, &kernel.costs());
    ASSERT_OK(store.Open());
    auto server = std::make_unique<OmosServer>(kernel);
    ASSERT_OK(Populate(*server));
    server->AttachStore(&store);
    ASSERT_OK_AND_ASSIGN(golden, InstantiateAll(*server));
    // Cold builds published: program images, plus the constrained library.
    EXPECT_GE(store.entry_count(), 4u);
    EXPECT_GE(store.stats().puts.load(), 4u);
    ASSERT_OK(server->PersistTo(store));
  }  // server, kernel, store die; only the disk remains

  Kernel kernel2;
  ImageStore store2(disk, kStoreRoot, &kernel2.costs());
  ASSERT_OK(store2.Open());
  EXPECT_GE(store2.entry_count(), 4u);
  auto server2 = std::make_unique<OmosServer>(kernel2);
  ASSERT_OK(server2->RestoreFromStore(store2));
  ASSERT_OK_AND_ASSIGN(std::vector<Golden> after, InstantiateAll(*server2));

  // Every image came back from the store (no re-link), byte-identical and
  // at identical addresses.
  EXPECT_GE(store2.stats().hits.load(), 3u);
  ASSERT_EQ(after.size(), golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(after[i].fingerprint, golden[i].fingerprint) << kPrograms[i];
    EXPECT_EQ(after[i].text_base, golden[i].text_base) << kPrograms[i];
    EXPECT_EQ(after[i].data_base, golden[i].data_base) << kPrograms[i];
  }
  // The adopted data image is a frame-backed CoW master again.
  ASSERT_OK_AND_ASSIGN(const CachedImage* ctr,
                       server2->Instantiate("/bin/ctr", Specialization{}, nullptr));
  EXPECT_TRUE(ctr->data_seg.has_value());

  // And the adopted images actually execute.
  ASSERT_OK_AND_ASSIGN(TaskId id, server2->IntegratedExec("/bin/ls", {"ls"}));
  Task* task = kernel2.FindTask(id);
  ASSERT_NE(task, nullptr);
  ASSERT_OK(kernel2.RunTask(*task));
  EXPECT_EQ(task->exit_code(), 21);
  ASSERT_OK_AND_ASSIGN(TaskId cid, server2->IntegratedExec("/bin/ctr", {"ctr"}));
  Task* ctask = kernel2.FindTask(cid);
  ASSERT_NE(ctask, nullptr);
  ASSERT_OK(kernel2.RunTask(*ctask));
  EXPECT_EQ(ctask->exit_code(), 8);
}

// The prelink table rides the snapshot (PR 9): a restarted server starts
// with the fleet-wide placements already solved, so its very first exec
// takes the stamp-valid fast path — adopting the image bytes from the
// store — instead of a cold miss.
TEST_F(StoreServerTest, RestartStartsWithWarmPrelinkTable) {
  SimFs disk;
  {
    Kernel kernel;
    ImageStore store(disk, kStoreRoot, &kernel.costs());
    ASSERT_OK(store.Open());
    auto server = std::make_unique<OmosServer>(kernel);
    ASSERT_OK(Populate(*server));
    server->AttachStore(&store);
    ASSERT_OK_AND_ASSIGN(int prelinked, server->PrelinkNamespace("/bin"));
    EXPECT_EQ(prelinked, 3);
    ASSERT_OK(server->PersistTo(store));
  }

  Kernel kernel2;
  ImageStore store2(disk, kStoreRoot, &kernel2.costs());
  ASSERT_OK(store2.Open());
  auto server2 = std::make_unique<OmosServer>(kernel2);
  ASSERT_OK(server2->RestoreFromStore(store2));
  // The table came back armed — no PrelinkNamespace ran this generation.
  EXPECT_TRUE(server2->prelink_enabled());
  EXPECT_GE(server2->PrelinkValidCount(), 1u);

  Counter* hits = MetricsRegistry::Global().GetCounter("prelink.hits");
  Counter* misses = MetricsRegistry::Global().GetCounter("prelink.misses");
  uint64_t hits_before = hits->value();
  uint64_t misses_before = misses->value();
  // First exec after restart: prelink entry valid, image adopted from the
  // store. A warm start, not a cold rebuild.
  ASSERT_OK_AND_ASSIGN(TaskId id, server2->PrelinkedExec("/bin/cat", {"cat"}));
  Task* task = kernel2.FindTask(id);
  ASSERT_NE(task, nullptr);
  ASSERT_OK(kernel2.RunTask(*task));
  EXPECT_EQ(task->exit_code(), 21);
  EXPECT_EQ(hits->value(), hits_before + 1);
  EXPECT_EQ(misses->value(), misses_before);
}

TEST_F(StoreServerTest, RedefinitionInvalidatesStoredImages) {
  SimFs disk;
  Kernel kernel;
  ImageStore store(disk, kStoreRoot, &kernel.costs());
  ASSERT_OK(store.Open());
  OmosServer server(kernel);
  ASSERT_OK(Populate(server));
  server.AttachStore(&store);
  ASSERT_OK(server.Instantiate("/bin/cat", Specialization{}, nullptr));
  size_t before = store.entry_count();
  ASSERT_GE(before, 1u);
  // Redefining the meta tombstones its persisted images alongside the
  // cache eviction.
  ASSERT_OK(server.DefineMeta("/bin/cat", "(merge /lib/crt0.o /obj/counter.o)"));
  EXPECT_GE(store.stats().invalidations.load(), 1u);
  EXPECT_LT(store.entry_count(), before);
  // The rebuilt image publishes under the new fingerprint and is adoptable.
  ASSERT_OK_AND_ASSIGN(const CachedImage* rebuilt,
                       server.Instantiate("/bin/cat", Specialization{}, nullptr));
  EXPECT_EQ(rebuilt->image.data.size() + rebuilt->image.bss_size > 0, true);
}

TEST_F(StoreServerTest, StoreCountersVisibleOverTheWire) {
  SimFs disk;
  Kernel kernel;
  ImageStore store(disk, kStoreRoot, &kernel.costs());
  ASSERT_OK(store.Open());
  OmosServer server(kernel);
  ASSERT_OK(Populate(server));
  server.AttachStore(&store);
  ASSERT_OK(server.Instantiate("/bin/ls", Specialization{}, nullptr));

  Channel channel = server.MakeChannel();
  OmosRequest request;
  request.op = OmosOp::kIntrospect;
  request.path = "stats";
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  ASSERT_TRUE(reply.ok) << reply.error;
  auto wire_value = [&](std::string_view name) -> uint64_t {
    for (const auto& [metric, value] : reply.metrics) {
      if (metric == name) {
        return value;
      }
    }
    ADD_FAILURE() << "metric missing from wire snapshot: " << name;
    return ~0ull;
  };
  EXPECT_EQ(wire_value("store.puts"), store.stats().puts.load());
  EXPECT_EQ(wire_value("store.probes"), store.stats().probes.load());
  EXPECT_EQ(wire_value("store.replays"), store.stats().replays.load());
  EXPECT_GT(wire_value("store.bytes_written"), 0u);
}

// ---- The crash sweep --------------------------------------------------------

// Kill the server's store at the k-th journal step for k = 1..100 (covering
// every crash point the workload reaches), power-cycle the disk, and
// recover. Acceptance: recovery always succeeds, every instantiated image
// is byte-identical to the fault-free golden run (or a clean counted
// rebuild producing those same bytes), and no PhysMemory frame leaks.
TEST_F(StoreServerTest, CrashSweepNeverServesWrongBytesOrLeaksFrames) {
  // Fault-free golden pass.
  std::vector<Golden> golden;
  {
    SimFs disk;
    Kernel kernel;
    ImageStore store(disk, kStoreRoot, &kernel.costs());
    ASSERT_OK(store.Open());
    OmosServer server(kernel);
    ASSERT_OK(Populate(server));
    server.AttachStore(&store);
    ASSERT_OK_AND_ASSIGN(golden, InstantiateAll(server));
    ASSERT_OK(server.PersistTo(store));
  }

  int swept = 0;
  for (uint64_t k = 1; k <= 100; ++k) {
    SimFs disk;
    uint64_t fires = 0;
    {
      ScopedFaultPlan plan(FaultPlan().Arm("store.crash", FaultSpec::Nth(k).WithMaxFires(1)));
      Kernel kernel;
      ImageStore store(disk, kStoreRoot, &kernel.costs());
      ASSERT_OK(store.Open());
      OmosServer server(kernel);
      ASSERT_OK(Populate(server));
      server.AttachStore(&store);
      for (const char* path : kPrograms) {
        // The build itself must survive a dead store: publish failures are
        // non-fatal, so instantiation succeeds even mid-crash.
        auto built = server.Instantiate(path, Specialization{}, nullptr);
        ASSERT_TRUE(built.ok()) << "k=" << k << ": " << built.error().ToString();
      }
      (void)server.PersistTo(store);  // fails cleanly once crashed
      fires = FaultSim::Fires("store.crash");
    }
    if (fires == 0) {
      break;  // k is past the last journal step this workload performs
    }
    ++swept;
    disk.DropUnsynced();  // power loss

    // Recovery: reopen must always succeed, then restart the server from
    // whatever the disk holds.
    Kernel kernel2;
    ImageStore store2(disk, kStoreRoot, &kernel2.costs());
    SCOPED_TRACE(testing::Message() << "sweep k=" << k);
    ASSERT_OK(store2.Open());
    auto server2 = std::make_unique<OmosServer>(kernel2);
    auto restored = server2->RestoreFromStore(store2);
    if (!restored.ok()) {
      // The crash predated the snapshot: clean, counted fallback — rebuild
      // the namespace by hand and attach the (possibly partial) store.
      ASSERT_EQ(restored.error().code(), ErrorCode::kNotFound) << "k=" << k;
      ASSERT_OK(Populate(*server2));
      server2->AttachStore(&store2);
    }
    ASSERT_OK_AND_ASSIGN(std::vector<Golden> after, InstantiateAll(*server2));
    for (size_t i = 0; i < golden.size(); ++i) {
      // Byte-identity holds whether the image was adopted from the store or
      // cold-rebuilt: the deterministic solver re-derives the same layout.
      EXPECT_EQ(after[i].fingerprint, golden[i].fingerprint) << "k=" << k << " " << kPrograms[i];
      EXPECT_EQ(after[i].text_base, golden[i].text_base) << "k=" << k << " " << kPrograms[i];
      EXPECT_EQ(after[i].data_base, golden[i].data_base) << "k=" << k << " " << kPrograms[i];
    }
    // No wrong bytes ever surfaced from the store.
    EXPECT_EQ(store2.stats().lost_records.load(), 0u) << "k=" << k;
    // Tear the world down: every frame the recovered server materialized
    // must return to the allocator.
    server2.reset();
    EXPECT_EQ(kernel2.phys().frames_in_use(), 0u) << "k=" << k;
  }
  // The sweep must have actually exercised a healthy spread of crash points.
  EXPECT_GE(swept, 20);
}

}  // namespace
}  // namespace omos
