// Property-style tests: algebraic invariants of the module calculus and
// round-trip laws, swept over generated modules with parameterized shapes.
#include <gtest/gtest.h>

#include "src/linker/link.h"
#include "src/linker/module.h"
#include "src/objfmt/backend.h"
#include "src/support/strings.h"
#include "tests/helpers.h"

namespace omos {
namespace {

// Deterministic pseudo-random generator (no global entropy in tests).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed * 2862933555777941757ULL + 3037000493ULL) {}
  uint32_t Next(uint32_t bound) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>((state_ >> 33) % bound);
  }

 private:
  uint64_t state_;
};

// Build a module of `fragments` fragments, each defining a couple of
// symbols and referencing a couple of others (possibly cross-fragment).
Module GenerateModule(uint32_t seed, int fragments, int syms_per_fragment) {
  Lcg rng(seed);
  Module m;
  bool first = true;
  int counter = 0;
  for (int f = 0; f < fragments; ++f) {
    auto object = std::make_shared<ObjectFile>(StrCat("gen", f, ".o"));
    object->section(SectionKind::kText)
        .bytes.resize(static_cast<size_t>(8 * syms_per_fragment * 2));
    uint32_t offset = 0;
    for (int s = 0; s < syms_per_fragment; ++s) {
      EXPECT_OK(object->DefineSymbol(StrCat("sym_", counter++),
                                     rng.Next(4) == 0 ? SymbolBinding::kWeak
                                                      : SymbolBinding::kGlobal,
                                     SectionKind::kText, offset));
      offset += 8;
    }
    for (int s = 0; s < syms_per_fragment; ++s) {
      std::string target = StrCat("sym_", rng.Next(static_cast<uint32_t>(counter + 4)));
      if (object->FindSymbol(target) == nullptr || !object->FindSymbol(target)->defined) {
        object->ReferenceSymbol(target);
      }
      object->AddReloc(SectionKind::kText,
                       Relocation{offset + 4, RelocKind::kAbs32, target, 0});
      offset += 8;
    }
    Module part = Module::FromObject(object);
    if (first) {
      m = std::move(part);
      first = false;
    } else {
      auto merged = Module::Merge(m, part);
      // Weak collisions can reject a strong/strong pair: retry without.
      if (merged.ok()) {
        m = std::move(merged).value();
      }
    }
  }
  return m;
}

std::vector<std::string> Exports(const Module& m) {
  auto names = m.ExportNames();
  EXPECT_TRUE(names.ok());
  return names.ok() ? names.value() : std::vector<std::string>{};
}

class ModuleAlgebra : public ::testing::TestWithParam<int> {
 protected:
  Module module_ = GenerateModule(static_cast<uint32_t>(GetParam()) * 7919u + 17u,
                                  3 + GetParam() % 4, 2 + GetParam() % 3);
};

TEST_P(ModuleAlgebra, ShowIsHideComplement) {
  // show(p) keeps exactly what hide(p) removes, over the same base.
  std::string pattern = "_[0-9]*[02468]$";  // even-numbered symbols
  std::vector<std::string> shown = Exports(module_.Show(pattern));
  std::vector<std::string> hidden = Exports(module_.Hide(pattern));
  std::vector<std::string> all = Exports(module_);
  EXPECT_EQ(shown.size() + hidden.size(), all.size());
  for (const std::string& name : shown) {
    EXPECT_TRUE(RegexMatch(name, pattern));
  }
  for (const std::string& name : hidden) {
    EXPECT_FALSE(RegexMatch(name, pattern));
  }
}

TEST_P(ModuleAlgebra, ProjectIsRestrictComplement) {
  std::string pattern = "_[0-9]*[13579]$";
  std::vector<std::string> projected = Exports(module_.Project(pattern));
  std::vector<std::string> restricted = Exports(module_.Restrict(pattern));
  std::vector<std::string> all = Exports(module_);
  EXPECT_EQ(projected.size() + restricted.size(), all.size());
}

TEST_P(ModuleAlgebra, RenameIsInvertibleOnDefs) {
  Module renamed = module_.Rename("^sym_", "tmp_&", RenameWhich::kDefs);
  Module back = renamed.Rename("^tmp_sym_", "sym_&", RenameWhich::kDefs);
  // A second rename with '&' appends; instead verify counts and prefixes.
  std::vector<std::string> names = Exports(renamed);
  EXPECT_EQ(names.size(), Exports(module_).size());
  for (const std::string& name : names) {
    EXPECT_TRUE(StartsWith(name, "tmp_sym_"));
  }
  (void)back;
}

TEST_P(ModuleAlgebra, CopyAsPreservesOriginal) {
  Module copied = module_.CopyAs("^sym_", "dup_&");
  std::vector<std::string> names = Exports(copied);
  EXPECT_EQ(names.size(), 2 * Exports(module_).size());
}

TEST_P(ModuleAlgebra, HideIsIdempotent) {
  std::string pattern = "^sym_1";
  std::vector<std::string> once = Exports(module_.Hide(pattern));
  std::vector<std::string> twice = Exports(module_.Hide(pattern).Hide(pattern));
  EXPECT_EQ(once, twice);
}

TEST_P(ModuleAlgebra, RestrictThenMergeRebinds) {
  // For every export E: restrict(E) then merge a fresh definition of E
  // leaves no unbound references to E.
  std::vector<std::string> all = Exports(module_);
  if (all.empty()) {
    GTEST_SKIP();
  }
  const std::string& victim = all[all.size() / 2];
  Module restricted = module_.Restrict(StrCat("^", victim, "$"));
  auto replacement = std::make_shared<ObjectFile>("repl.o");
  replacement->section(SectionKind::kText).bytes.resize(8);
  ASSERT_OK(replacement->DefineSymbol(victim, SymbolBinding::kGlobal, SectionKind::kText, 0));
  ASSERT_OK_AND_ASSIGN(Module merged,
                       Module::Merge(restricted, Module::FromObject(replacement)));
  ASSERT_OK_AND_ASSIGN(auto unbound, merged.UnboundRefNames());
  for (const std::string& name : unbound) {
    EXPECT_NE(name, victim);
  }
}

TEST_P(ModuleAlgebra, MergeExportUnionWhenDisjoint) {
  Module other = GenerateModule(static_cast<uint32_t>(GetParam()) + 1000u, 2, 2);
  // Rename to guarantee disjoint export sets.
  Module disjoint = other.Rename("^sym_", "other_&", RenameWhich::kBoth);
  auto merged = Module::Merge(module_, disjoint);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(Exports(*merged).size(), Exports(module_).size() + Exports(disjoint).size());
}

TEST_P(ModuleAlgebra, MaterializationIsStable) {
  Module chained = module_.Hide("^sym_2").Rename("^sym_1", "one_&", RenameWhich::kBoth);
  std::vector<std::string> first = Exports(chained);
  std::vector<std::string> second = Exports(chained);
  EXPECT_EQ(first, second);
}

TEST_P(ModuleAlgebra, LinkIsDeterministic) {
  LayoutSpec layout;
  layout.allow_unresolved = true;
  ASSERT_OK_AND_ASSIGN(LinkedImage one, LinkImage(module_, layout, "p"));
  ASSERT_OK_AND_ASSIGN(LinkedImage two, LinkImage(module_, layout, "p"));
  EXPECT_EQ(one.text, two.text);
  EXPECT_EQ(one.data, two.data);
  EXPECT_EQ(one.unresolved, two.unresolved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModuleAlgebra, ::testing::Range(0, 12));

// ---- Codec round-trip properties over generated objects ----------------------

class CodecProperty : public ::testing::TestWithParam<int> {};

TEST_P(CodecProperty, BinaryAndTextRoundTrip) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 104729u);
  ObjectFile object(StrCat("rand", GetParam(), ".o"));
  size_t text_size = 8 * (1 + rng.Next(16));
  object.section(SectionKind::kText).bytes.resize(text_size);
  for (auto& byte : object.section(SectionKind::kText).bytes) {
    byte = static_cast<uint8_t>(rng.Next(256));
  }
  object.section(SectionKind::kBss).bss_size = rng.Next(4096);
  int syms = 1 + static_cast<int>(rng.Next(6));
  for (int i = 0; i < syms; ++i) {
    EXPECT_OK(object.DefineSymbol(StrCat("s", i),
                                  static_cast<SymbolBinding>(rng.Next(3)), SectionKind::kText,
                                  rng.Next(static_cast<uint32_t>(text_size))));
  }
  object.ReferenceSymbol("ext");
  object.AddReloc(SectionKind::kText,
                  Relocation{rng.Next(static_cast<uint32_t>(text_size - 4)),
                             static_cast<RelocKind>(rng.Next(2)), "ext",
                             static_cast<int32_t>(rng.Next(100)) - 50});

  for (const char* format : {"xof-binary", "xof-text"}) {
    const ObjectBackend* backend = BackendRegistry::Default().Find(format);
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bytes, backend->Encode(object));
    ASSERT_OK_AND_ASSIGN(ObjectFile decoded, backend->Decode(bytes));
    EXPECT_EQ(decoded, object) << format;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Range(0, 16));

}  // namespace
}  // namespace omos
