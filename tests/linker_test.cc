// The module calculus (Jigsaw operators) and the link step.
#include <gtest/gtest.h>

#include "src/linker/image_codec.h"
#include "src/linker/link.h"
#include "src/linker/module.h"
#include "tests/helpers.h"

namespace omos {
namespace {

FragmentPtr MakeFragment(const std::string& name,
                         const std::vector<std::pair<std::string, bool>>& defs_and_weak,
                         const std::vector<std::string>& refs) {
  auto object = std::make_shared<ObjectFile>(name);
  uint32_t offset = 0;
  object->section(SectionKind::kText).bytes.resize(8 * (defs_and_weak.size() + refs.size()) + 8);
  for (const auto& [def, weak] : defs_and_weak) {
    EXPECT_OK(object->DefineSymbol(def, weak ? SymbolBinding::kWeak : SymbolBinding::kGlobal,
                                   SectionKind::kText, offset));
    offset += 8;
  }
  for (const std::string& ref : refs) {
    object->ReferenceSymbol(ref);
    object->AddReloc(SectionKind::kText, Relocation{offset + 4, RelocKind::kAbs32, ref, 0});
    offset += 8;
  }
  return object;
}

Module Leaf(const std::string& name, const std::vector<std::string>& defs,
            const std::vector<std::string>& refs) {
  std::vector<std::pair<std::string, bool>> dw;
  for (const std::string& def : defs) {
    dw.emplace_back(def, false);
  }
  return Module::FromObject(MakeFragment(name, dw, refs));
}

BindState StateOfRef(const Module& m, uint32_t fragment, const std::string& name) {
  auto space = m.Space();
  EXPECT_TRUE(space.ok());
  const RefRecord* ref = (*space)->FindRef(fragment, name);
  return ref == nullptr ? BindState::kUnbound : ref->state;
}

const Export& ExportAt(const SymbolSpace* space, std::string_view name) {
  const Export* exp = space->FindExport(name);
  EXPECT_NE(exp, nullptr) << "no export named " << name;
  return *exp;
}

const RefRecord& RefAt(const SymbolSpace* space, uint32_t fragment, std::string_view name) {
  const RefRecord* ref = space->FindRef(fragment, name);
  EXPECT_NE(ref, nullptr) << "no ref (" << fragment << ", " << name << ")";
  return *ref;
}

TEST(Module, LeafExportsAndRefs) {
  Module m = Leaf("a.o", {"f", "g"}, {"h"});
  ASSERT_OK_AND_ASSIGN(auto exports, m.ExportNames());
  EXPECT_EQ(exports, (std::vector<std::string>{"f", "g"}));
  ASSERT_OK_AND_ASSIGN(auto unbound, m.UnboundRefNames());
  EXPECT_EQ(unbound, (std::vector<std::string>{"h"}));
}

TEST(Module, SelfReferenceBoundButVirtual) {
  // A fragment that calls its own export starts bound (not frozen).
  auto object = std::make_shared<ObjectFile>("self.o");
  object->section(SectionKind::kText).bytes.resize(16);
  ASSERT_OK(object->DefineSymbol("f", SymbolBinding::kGlobal, SectionKind::kText, 0));
  object->AddReloc(SectionKind::kText, Relocation{12, RelocKind::kAbs32, "f", 0});
  Module m = Module::FromObject(object);
  EXPECT_EQ(StateOfRef(m, 0, "f"), BindState::kBound);
}

TEST(Module, DefaultHiddenPrunesExports) {
  // Two globals, one explicitly exported, under default-hidden: only the
  // exported one reaches the symbol space.
  auto object = std::make_shared<ObjectFile>("lib.o");
  object->section(SectionKind::kText).bytes.resize(16);
  EXPECT_OK(object->DefineSymbol("api", SymbolBinding::kGlobal, SectionKind::kText, 0));
  EXPECT_OK(object->DefineSymbol("internal", SymbolBinding::kGlobal, SectionKind::kText, 8));
  object->set_default_hidden(true);
  object->FindMutableSymbol("api")->visibility = SymbolVisibility::kExported;
  Module m = Module::FromObject(object);
  ASSERT_OK_AND_ASSIGN(auto exports, m.ExportNames());
  EXPECT_EQ(exports, (std::vector<std::string>{"api"}));
}

TEST(Module, HiddenSymbolInvisibleToMerge) {
  // a calls helper; b defines helper but hides it — the merge must NOT bind
  // a's reference to the hidden definition.
  Module a = Leaf("a.o", {"main"}, {"helper"});
  auto hider = std::make_shared<ObjectFile>("b.o");
  hider->section(SectionKind::kText).bytes.resize(8);
  EXPECT_OK(hider->DefineSymbol("helper", SymbolBinding::kGlobal, SectionKind::kText, 0));
  hider->FindMutableSymbol("helper")->visibility = SymbolVisibility::kHidden;
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(a, Module::FromObject(hider)));
  EXPECT_EQ(StateOfRef(merged, 0, "helper"), BindState::kUnbound);
  ASSERT_OK_AND_ASSIGN(auto unbound, merged.UnboundRefNames());
  EXPECT_EQ(unbound, (std::vector<std::string>{"helper"}));
}

TEST(Module, HiddenSelfReferenceFrozenAndStillLinks) {
  // A fragment calling its own hidden export: the ref freezes at FromObject
  // (nothing outside may rebind it) but the link still resolves it to the
  // local definition.
  auto object = std::make_shared<ObjectFile>("self.o");
  object->section(SectionKind::kText).bytes.resize(16);
  ASSERT_OK(object->DefineSymbol("f", SymbolBinding::kGlobal, SectionKind::kText, 0));
  object->AddReloc(SectionKind::kText, Relocation{12, RelocKind::kAbs32, "f", 0});
  object->FindMutableSymbol("f")->visibility = SymbolVisibility::kHidden;
  Module m = Module::FromObject(object);
  EXPECT_EQ(StateOfRef(m, 0, "f"), BindState::kFrozen);
  ASSERT_OK_AND_ASSIGN(auto exports, m.ExportNames());
  EXPECT_TRUE(exports.empty());
  LayoutSpec layout;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "t"));
  uint32_t patched = static_cast<uint32_t>(image.text[12]) |
                     static_cast<uint32_t>(image.text[13]) << 8 |
                     static_cast<uint32_t>(image.text[14]) << 16 |
                     static_cast<uint32_t>(image.text[15]) << 24;
  EXPECT_EQ(patched, image.text_base);  // f sits at text offset 0
}

TEST(Module, MergeBindsReferences) {
  Module a = Leaf("a.o", {"main"}, {"helper"});
  Module b = Leaf("b.o", {"helper"}, {});
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(a, b));
  EXPECT_EQ(StateOfRef(merged, 0, "helper"), BindState::kBound);
  ASSERT_OK_AND_ASSIGN(auto unbound, merged.UnboundRefNames());
  EXPECT_TRUE(unbound.empty());
}

TEST(Module, MergeDuplicateStrongDefinitionsError) {
  Module a = Leaf("a.o", {"f"}, {});
  Module b = Leaf("b.o", {"f"}, {});
  auto merged = Module::Merge(a, b);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.error().code(), ErrorCode::kDuplicateSymbol);
}

TEST(Module, WeakYieldsToStrong) {
  Module weak = Module::FromObject(MakeFragment("w.o", {{"f", true}}, {}));
  Module strong = Leaf("s.o", {"f"}, {});
  // Both orders succeed and the strong definition wins.
  for (auto [first, second] : {std::pair{weak, strong}, std::pair{strong, weak}}) {
    ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(first, second));
    ASSERT_OK_AND_ASSIGN(const SymbolSpace* space, merged.Space());
    const Export& exp = ExportAt(space, "f");
    EXPECT_FALSE(exp.weak);
  }
}

TEST(Module, TwoWeakDefinitionsFirstWins) {
  Module w1 = Module::FromObject(MakeFragment("w1.o", {{"f", true}}, {}));
  Module w2 = Module::FromObject(MakeFragment("w2.o", {{"f", true}}, {}));
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(w1, w2));
  ASSERT_OK_AND_ASSIGN(const SymbolSpace* space, merged.Space());
  EXPECT_EQ(ExportAt(space, "f").def.fragment, 0u);
}

TEST(Module, OverrideRebindsNonFrozen) {
  // a defines f and calls it; override with a new f rebinds a's internal call.
  auto object = std::make_shared<ObjectFile>("a.o");
  object->section(SectionKind::kText).bytes.resize(16);
  ASSERT_OK(object->DefineSymbol("f", SymbolBinding::kGlobal, SectionKind::kText, 0));
  object->AddReloc(SectionKind::kText, Relocation{12, RelocKind::kAbs32, "f", 0});
  Module a = Module::FromObject(object);
  Module b = Leaf("b.o", {"f"}, {});
  ASSERT_OK_AND_ASSIGN(Module overridden, Module::Override(a, b));
  ASSERT_OK_AND_ASSIGN(const SymbolSpace* space, overridden.Space());
  // a's ref to f now targets b's definition (fragment 1).
  EXPECT_EQ(RefAt(space, 0, "f").target.fragment, 1u);
  EXPECT_EQ(ExportAt(space, "f").def.fragment, 1u);
}

TEST(Module, FreezeProtectsFromOverride) {
  auto object = std::make_shared<ObjectFile>("a.o");
  object->section(SectionKind::kText).bytes.resize(16);
  ASSERT_OK(object->DefineSymbol("f", SymbolBinding::kGlobal, SectionKind::kText, 0));
  object->AddReloc(SectionKind::kText, Relocation{12, RelocKind::kAbs32, "f", 0});
  Module a = Module::FromObject(object).Freeze("^f$");
  Module b = Leaf("b.o", {"f"}, {});
  ASSERT_OK_AND_ASSIGN(Module overridden, Module::Override(a, b));
  ASSERT_OK_AND_ASSIGN(const SymbolSpace* space, overridden.Space());
  // Frozen binding still targets the original definition...
  EXPECT_EQ(RefAt(space, 0, "f").target.fragment, 0u);
  // ...even though the export table now shows the override.
  EXPECT_EQ(ExportAt(space, "f").def.fragment, 1u);
}

TEST(Module, FreezeProtectsFromRestrict) {
  Module a = Leaf("a.o", {"main"}, {"util"});
  Module b = Leaf("b.o", {"util"}, {});
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(a, b));
  Module frozen = merged.Freeze("^util$").Restrict("^util$");
  EXPECT_EQ(StateOfRef(frozen, 0, "util"), BindState::kFrozen);
  // But the export is gone.
  ASSERT_OK_AND_ASSIGN(bool has, frozen.HasExport("util"));
  EXPECT_FALSE(has);
}

TEST(Module, RestrictUnbindsAndRemoves) {
  Module a = Leaf("a.o", {"main"}, {"util"});
  Module b = Leaf("b.o", {"util"}, {});
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(a, b));
  Module restricted = merged.Restrict("^util$");
  EXPECT_EQ(StateOfRef(restricted, 0, "util"), BindState::kUnbound);
  ASSERT_OK_AND_ASSIGN(bool has, restricted.HasExport("util"));
  EXPECT_FALSE(has);
  // Re-merging a new util rebinds (the Fig. 2 pattern).
  Module c = Leaf("c.o", {"util"}, {});
  ASSERT_OK_AND_ASSIGN(Module again, Module::Merge(restricted, c));
  ASSERT_OK_AND_ASSIGN(const SymbolSpace* space, again.Space());
  EXPECT_EQ(RefAt(space, 0, "util").target.fragment, 2u);
}

TEST(Module, ProjectKeepsOnlyMatching) {
  Module m = Leaf("a.o", {"keep_this", "drop_this"}, {});
  Module projected = m.Project("^keep_");
  ASSERT_OK_AND_ASSIGN(auto names, projected.ExportNames());
  EXPECT_EQ(names, (std::vector<std::string>{"keep_this"}));
}

TEST(Module, HideFreezesAndRemoves) {
  Module a = Leaf("a.o", {"main"}, {"internal"});
  Module b = Leaf("b.o", {"internal"}, {});
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(a, b));
  Module hidden = merged.Hide("^internal$");
  EXPECT_EQ(StateOfRef(hidden, 0, "internal"), BindState::kFrozen);
  ASSERT_OK_AND_ASSIGN(bool has, hidden.HasExport("internal"));
  EXPECT_FALSE(has);
}

TEST(Module, ShowIsHideComplement) {
  Module m = Leaf("a.o", {"api_f", "api_g", "impl_h"}, {});
  Module shown = m.Show("^api_");
  ASSERT_OK_AND_ASSIGN(auto names, shown.ExportNames());
  EXPECT_EQ(names, (std::vector<std::string>{"api_f", "api_g"}));
}

TEST(Module, RenameDefsOnly) {
  Module m = Leaf("a.o", {"old_name"}, {"old_name_ref"});
  Module renamed = m.Rename("^old_name$", "new_name", RenameWhich::kDefs);
  ASSERT_OK_AND_ASSIGN(bool has_new, renamed.HasExport("new_name"));
  EXPECT_TRUE(has_new);
  ASSERT_OK_AND_ASSIGN(bool has_old, renamed.HasExport("old_name"));
  EXPECT_FALSE(has_old);
}

TEST(Module, RenameRefsOnlyRedirectsBinding) {
  Module a = Leaf("a.o", {"main"}, {"bad_fn"});
  Module b = Leaf("b.o", {"good_fn"}, {});
  Module redirected = a.Rename("^bad_fn$", "good_fn", RenameWhich::kRefs);
  ASSERT_OK_AND_ASSIGN(Module merged, Module::Merge(redirected, b));
  ASSERT_OK_AND_ASSIGN(auto unbound, merged.UnboundRefNames());
  EXPECT_TRUE(unbound.empty());
}

TEST(Module, RenameAmpersandSubstitution) {
  Module m = Leaf("a.o", {"read", "write"}, {});
  Module renamed = m.Rename("^", "wrapped_&", RenameWhich::kDefs);
  ASSERT_OK_AND_ASSIGN(auto names, renamed.ExportNames());
  EXPECT_EQ(names, (std::vector<std::string>{"wrapped_read", "wrapped_write"}));
}

TEST(Module, CopyAsDuplicatesDefinition) {
  Module m = Leaf("a.o", {"malloc"}, {});
  Module copied = m.CopyAs("^malloc$", "_REAL_malloc");
  ASSERT_OK_AND_ASSIGN(const SymbolSpace* space, copied.Space());
  EXPECT_EQ(ExportAt(space, "malloc").def, ExportAt(space, "_REAL_malloc").def);
}

TEST(Module, ViewOpsAreLazy) {
  Module m = Leaf("a.o", {"f"}, {});
  Module chained = m.Rename("^f$", "g", RenameWhich::kBoth).Hide("^nothing$").Freeze(".*");
  EXPECT_EQ(chained.pending_ops(), 3u);
  ASSERT_OK(chained.Space());  // materializes
  Module more = chained.Show(".*");
  EXPECT_EQ(more.pending_ops(), 4u);
}

TEST(Module, ReorderFragmentsPreservesSemantics) {
  Module a = Leaf("a.o", {"f"}, {"g"});
  Module b = Leaf("b.o", {"g"}, {});
  Module c = Leaf("c.o", {"h"}, {});
  ASSERT_OK_AND_ASSIGN(Module m, Module::Merge(a, b));
  ASSERT_OK_AND_ASSIGN(m, Module::Merge(m, c));
  ASSERT_OK_AND_ASSIGN(Module reordered, m.ReorderFragments({2, 0, 1}));
  ASSERT_OK_AND_ASSIGN(const SymbolSpace* space, reordered.Space());
  EXPECT_EQ(ExportAt(space, "h").def.fragment, 0u);
  EXPECT_EQ(ExportAt(space, "f").def.fragment, 1u);
  // f's ref to g follows its fragment.
  EXPECT_EQ(RefAt(space, 1, "g").target.fragment, 2u);
}

TEST(Module, ReorderRejectsBadPermutation) {
  Module m = Leaf("a.o", {"f"}, {});
  EXPECT_FALSE(m.ReorderFragments({0, 0}).ok());
  EXPECT_FALSE(m.ReorderFragments({5}).ok());
}

// ---- Link step ----------------------------------------------------------------

TEST(Link, AppliesAbsoluteRelocation) {
  // main calls helper; verify the imm field holds helper's final address.
  Module a = Leaf("a.o", {"main"}, {"helper"});
  Module b = Leaf("b.o", {"helper"}, {});
  ASSERT_OK_AND_ASSIGN(Module m, Module::Merge(a, b));
  LayoutSpec layout;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "t"));
  const ImageSymbol* helper = image.FindSymbol("helper");
  ASSERT_NE(helper, nullptr);
  // a.o's reloc is at text offset 12 (imm field at 8+4).
  uint32_t patched = static_cast<uint32_t>(image.text[12]) |
                     static_cast<uint32_t>(image.text[13]) << 8 |
                     static_cast<uint32_t>(image.text[14]) << 16 |
                     static_cast<uint32_t>(image.text[15]) << 24;
  EXPECT_EQ(patched, helper->addr);
}

TEST(Link, ExternalsResolveUnboundRefs) {
  Module a = Leaf("a.o", {"main"}, {"lib_fn"});
  LayoutSpec layout;
  layout.externals["lib_fn"] = 0x02000040;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(a, layout, "t"));
  uint32_t patched = static_cast<uint32_t>(image.text[12]) |
                     static_cast<uint32_t>(image.text[13]) << 8 |
                     static_cast<uint32_t>(image.text[14]) << 16 |
                     static_cast<uint32_t>(image.text[15]) << 24;
  EXPECT_EQ(patched, 0x02000040u);
}

TEST(Link, UnresolvedFailsUnlessAllowed) {
  Module a = Leaf("a.o", {"main"}, {"ghost"});
  LayoutSpec layout;
  auto strict = LinkImage(a, layout, "t");
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.error().code(), ErrorCode::kUnresolvedSymbol);
  layout.allow_unresolved = true;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(a, layout, "t"));
  EXPECT_EQ(image.unresolved, (std::vector<std::string>{"ghost"}));
}

TEST(Link, EntrySymbolResolution) {
  Module a = Leaf("a.o", {"_start"}, {});
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(a, layout, "t"));
  EXPECT_EQ(image.entry, image.text_base);
  layout.entry_symbol = "nonexistent";
  EXPECT_FALSE(LinkImage(a, layout, "t").ok());
}

TEST(Link, DataFollowsTextOnNextPage) {
  auto object = std::make_shared<ObjectFile>("d.o");
  object->section(SectionKind::kText).bytes.resize(8);
  object->section(SectionKind::kData).bytes = {1, 2, 3, 4};
  object->section(SectionKind::kBss).bss_size = 32;
  ASSERT_OK(object->DefineSymbol("d", SymbolBinding::kGlobal, SectionKind::kData, 0));
  ASSERT_OK(object->DefineSymbol("z", SymbolBinding::kGlobal, SectionKind::kBss, 4));
  Module m = Module::FromObject(object);
  LayoutSpec layout;
  layout.text_base = 0x100000;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "t"));
  EXPECT_EQ(image.data_base, 0x101000u);
  EXPECT_EQ(image.FindSymbol("d")->addr, image.data_base);
  // bss symbols land after initialized data.
  EXPECT_EQ(image.FindSymbol("z")->addr, image.data_base + 4 + 4);
  EXPECT_EQ(image.bss_size, 32u);
}

TEST(Link, RecordRelocsLogsEverything) {
  Module a = Leaf("a.o", {"main"}, {"helper"});
  Module b = Leaf("b.o", {"helper"}, {});
  ASSERT_OK_AND_ASSIGN(Module m, Module::Merge(a, b));
  LayoutSpec layout;
  layout.record_relocs = true;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "t"));
  ASSERT_EQ(image.reloc_log.size(), image.stats.relocations_applied);
  ASSERT_FALSE(image.reloc_log.empty());
  EXPECT_EQ(image.reloc_log[0].symbol, "helper");
  EXPECT_TRUE(image.reloc_log[0].cross_fragment);
}

TEST(Link, FragmentAlignment) {
  // Two fragments with odd-sized text: second must start 8-aligned.
  auto odd = std::make_shared<ObjectFile>("odd.o");
  odd->section(SectionKind::kText).bytes.resize(12);
  ASSERT_OK(odd->DefineSymbol("a", SymbolBinding::kGlobal, SectionKind::kText, 0));
  auto next = std::make_shared<ObjectFile>("next.o");
  next->section(SectionKind::kText).bytes.resize(8);
  ASSERT_OK(next->DefineSymbol("b", SymbolBinding::kGlobal, SectionKind::kText, 0));
  ASSERT_OK_AND_ASSIGN(Module m,
                       Module::Merge(Module::FromObject(odd), Module::FromObject(next)));
  LayoutSpec layout;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "t"));
  EXPECT_EQ(image.FindSymbol("b")->addr % 8, 0u);
}


TEST(ImageCodec, RoundTrip) {
  Module a = Leaf("a.o", {"_start", "main"}, {"helper"});
  Module b = Leaf("b.o", {"helper"}, {});
  auto merged = Module::Merge(a, b);
  ASSERT_TRUE(merged.ok());
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(*merged, layout, "prog"));
  std::vector<uint8_t> bytes = EncodeImage(image);
  ASSERT_TRUE(IsEncodedImage(bytes));
  ASSERT_OK_AND_ASSIGN(LinkedImage decoded, DecodeImage(bytes));
  EXPECT_EQ(decoded.name, image.name);
  EXPECT_EQ(decoded.text_base, image.text_base);
  EXPECT_EQ(decoded.data_base, image.data_base);
  EXPECT_EQ(decoded.entry, image.entry);
  EXPECT_EQ(decoded.text, image.text);
  EXPECT_EQ(decoded.data, image.data);
  EXPECT_EQ(decoded.symbols.size(), image.symbols.size());
}

TEST(ImageCodec, RejectsGarbageAndTruncation) {
  EXPECT_FALSE(DecodeImage({1, 2, 3}).ok());
  Module a = Leaf("a.o", {"f"}, {});
  LayoutSpec layout;
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(a, layout, "t"));
  std::vector<uint8_t> bytes = EncodeImage(image);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DecodeImage(bytes).ok());
}

}  // namespace
}  // namespace omos
