// Unit tests for src/support: Result, Error, string utilities, logging,
// fault injection.
#include <gtest/gtest.h>

#include <set>

#include <atomic>
#include <vector>

#include "src/support/error.h"
#include "src/support/faultsim.h"
#include "src/support/flat_map.h"
#include "src/support/interner.h"
#include "src/support/log.h"
#include "src/support/result.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace omos {
namespace {

TEST(Error, ToStringIncludesCodeAndMessage) {
  Error e(ErrorCode::kUnresolvedSymbol, "reference to _foo has no definition");
  EXPECT_EQ(e.ToString(), "unresolved-symbol: reference to _foo has no definition");
}

// Exhaustiveness sweep: every code in [kOk, kInternal] must have its own
// name — none missing ("unknown") and no two codes sharing one. Adding a
// code to the enum without a name in ErrorCodeName fails here.
TEST(Error, EveryCodeHasAUniqueName) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    std::string name(ErrorCodeName(static_cast<ErrorCode>(i)));
    EXPECT_NE(name, "unknown") << "code " << i << " has no name";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name '" << name << "' at code " << i;
  }
}

TEST(Error, RobustnessCodesAreNamed) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kTimeout), "timeout");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnavailable), "unavailable");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kCorrupted), "corrupted");
}

TEST(Result, ValueRoundTrip) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, ErrorRoundTrip) {
  Result<int> r = Err(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = OkResult();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Err(ErrorCode::kIoError, "disk on fire");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kIoError);
}

Result<int> Doubler(Result<int> in) {
  OMOS_TRY(int v, std::move(in));
  return v * 2;
}

TEST(Result, TryMacroPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  Result<int> failed = Doubler(Err(ErrorCode::kParseError, "x"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code(), ErrorCode::kParseError);
}

TEST(Strings, Split) {
  EXPECT_EQ(SplitString("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("/a/", '/'), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(SplitString("", '/'), (std::vector<std::string>{""}));
}

TEST(Strings, Strip) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(Strings, StrCat) {
  EXPECT_EQ(StrCat("sym ", "x", " at ", 16), "sym x at 16");
  EXPECT_EQ(StrCat(), "");
}

TEST(Strings, Hex32) {
  EXPECT_EQ(Hex32(0), "0x00000000");
  EXPECT_EQ(Hex32(0xdeadbeef), "0xdeadbeef");
}

TEST(Strings, Fnv1aStableAndDistinct) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1a(""), Fnv1a(std::string_view("\0", 1)));
}

TEST(Strings, RegexMatch) {
  EXPECT_TRUE(RegexMatch("_malloc", "^_malloc$"));
  EXPECT_FALSE(RegexMatch("_malloc2", "^_malloc$"));
  EXPECT_TRUE(RegexMatch("_malloc2", "_malloc"));  // substring search semantics
  EXPECT_TRUE(RegexMatch("c_17", "^(c_17|c_18)$"));
  EXPECT_FALSE(RegexMatch("x", "["));  // invalid pattern -> no match, no throw
}

// ---- Fault injection ----------------------------------------------------------

TEST(FaultSim, UnarmedSitesNeverFire) {
  FaultSim::Reset();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultSim::Trip("fs.read"));
  }
  EXPECT_EQ(FaultSim::TotalFires(), 0u);
}

TEST(FaultSim, NthHitFiresExactlyOnce) {
  ScopedFaultPlan plan(FaultPlan().Arm("fs.read", FaultSpec::Nth(3)));
  EXPECT_FALSE(FaultSim::Trip("fs.read"));
  EXPECT_FALSE(FaultSim::Trip("fs.read"));
  EXPECT_TRUE(FaultSim::Trip("fs.read"));
  EXPECT_FALSE(FaultSim::Trip("fs.read"));
  EXPECT_EQ(FaultSim::Hits("fs.read"), 4u);
  EXPECT_EQ(FaultSim::Fires("fs.read"), 1u);
}

TEST(FaultSim, EveryKthFiresPeriodically) {
  ScopedFaultPlan plan(FaultPlan().Arm("pipe.drop", FaultSpec::Every(2)));
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    fires += FaultSim::Trip("pipe.drop") ? 1 : 0;
  }
  EXPECT_EQ(fires, 5);
}

TEST(FaultSim, MaxFiresCapsTheSchedule) {
  ScopedFaultPlan plan(FaultPlan().Arm("pipe.drop", FaultSpec::Every(1).WithMaxFires(2)));
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    fires += FaultSim::Trip("pipe.drop") ? 1 : 0;
  }
  EXPECT_EQ(fires, 2);
}

// Probability triggers are hashed from (seed, hit index): the same seed must
// reproduce the identical fault schedule, and a different seed a different
// (but similarly dense) one.
TEST(FaultSim, ProbabilityIsDeterministicPerSeed) {
  auto schedule = [](uint64_t seed) {
    ScopedFaultPlan plan(FaultPlan().Arm("x", FaultSpec::Prob(0.3, seed)));
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(FaultSim::Trip("x"));
    }
    return fired;
  };
  std::vector<bool> a = schedule(42);
  EXPECT_EQ(a, schedule(42));
  EXPECT_NE(a, schedule(43));
  int fires = 0;
  for (bool f : a) {
    fires += f ? 1 : 0;
  }
  EXPECT_GT(fires, 200 * 0.3 / 3);  // loose density check
  EXPECT_LT(fires, 200 * 0.3 * 3);
}

TEST(FaultSim, PayloadKnobDelivered) {
  ScopedFaultPlan plan(
      FaultPlan().Arm("cache.bitrot", FaultSpec::Nth(1).WithPayload(0xBEEF)));
  uint32_t knob = 0;
  EXPECT_TRUE(FaultSim::Trip("cache.bitrot", &knob));
  EXPECT_EQ(knob, 0xBEEFu);
}

TEST(FaultSim, ScopedPlanResetsOnExit) {
  {
    ScopedFaultPlan plan(FaultPlan().Arm("fs.write", FaultSpec::Every(1)));
    EXPECT_TRUE(FaultSim::Trip("fs.write"));
  }
  EXPECT_FALSE(FaultSim::Trip("fs.write"));
  EXPECT_EQ(FaultSim::TotalFires(), 0u);
}

TEST(Log, LevelGate) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kNone);
  LogMessage(LogLevel::kError, "test", "should be dropped silently");
  SetLogLevel(old);
}

// ---- Symbol interner -------------------------------------------------------------

TEST(Interner, SameStringSameId) {
  SymbolInterner& interner = SymbolInterner::Global();
  SymId a = interner.Intern("interner_test_sym_a");
  EXPECT_EQ(interner.Intern("interner_test_sym_a"), a);
  EXPECT_NE(interner.Intern("interner_test_sym_b"), a);
  EXPECT_EQ(interner.Name(a), "interner_test_sym_a");
}

TEST(Interner, FindDoesNotInsert) {
  SymbolInterner& interner = SymbolInterner::Global();
  size_t before = interner.size();
  EXPECT_EQ(interner.Find("interner_test_never_interned_xyzzy"), kNoSymId);
  EXPECT_EQ(interner.size(), before);
  SymId id = interner.Intern("interner_test_find_me");
  EXPECT_EQ(interner.Find("interner_test_find_me"), id);
}

TEST(Interner, NamesStableAcrossGrowth) {
  SymbolInterner& interner = SymbolInterner::Global();
  SymId first = interner.Intern("interner_test_stable");
  std::string_view name = interner.Name(first);
  for (int i = 0; i < 1000; ++i) {
    interner.Intern(StrCat("interner_test_growth_", i));
  }
  EXPECT_EQ(name.data(), interner.Name(first).data());  // no reallocation
}

// ---- Flat hash map ---------------------------------------------------------------

TEST(FlatMap, InsertFindEraseChurn) {
  FlatMap<uint64_t, int> map;
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(map.try_emplace(i * 7919, static_cast<int>(i)).second);
  }
  EXPECT_EQ(map.size(), 500u);
  EXPECT_FALSE(map.try_emplace(0, 99).second);  // already present
  for (uint64_t i = 0; i < 500; i += 2) {
    EXPECT_TRUE(map.erase(i * 7919));
  }
  EXPECT_EQ(map.size(), 250u);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(map.contains(i * 7919), i % 2 == 1) << i;
  }
  // Re-insert into tombstoned slots.
  for (uint64_t i = 0; i < 500; i += 2) {
    EXPECT_TRUE(map.try_emplace(i * 7919, -1).second);
  }
  EXPECT_EQ(map.size(), 500u);
  EXPECT_EQ(map.at(0), -1);
  EXPECT_EQ(map.at(3 * 7919), 3);
}

TEST(FlatMap, IterationVisitsEveryLiveEntry) {
  FlatMap<uint64_t, uint64_t> map;
  uint64_t want_sum = 0;
  for (uint64_t i = 1; i <= 100; ++i) {
    map.insert_or_assign(i, i * 10);
    want_sum += i * 10;
  }
  map.erase(50);
  want_sum -= 500;
  uint64_t sum = 0;
  size_t count = 0;
  for (const auto& [key, value] : map) {
    sum += value;
    ++count;
  }
  EXPECT_EQ(count, 99u);
  EXPECT_EQ(sum, want_sum);
}

TEST(FlatMap, InsertOrAssignOverwrites) {
  FlatMap<uint64_t, std::string> map;
  map.insert_or_assign(1, "first");
  map.insert_or_assign(1, "second");
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(1), "second");
}

// ---- Fast byte hashing -----------------------------------------------------------

TEST(HashBytes, SensitiveToEveryByte) {
  std::vector<uint8_t> buf(4096, 0xAB);
  uint64_t base = HashBytes(buf.data(), buf.size());
  EXPECT_EQ(HashBytes(buf.data(), buf.size()), base);  // deterministic
  for (size_t at : {size_t{0}, size_t{7}, size_t{4090}, size_t{4095}}) {
    buf[at] ^= 1;
    EXPECT_NE(HashBytes(buf.data(), buf.size()), base) << "byte " << at;
    buf[at] ^= 1;
  }
  // Length is part of the digest (trailing zero byte is not free).
  EXPECT_NE(HashBytes(buf.data(), buf.size() - 1), base);
  // Seed separates streams.
  EXPECT_NE(HashBytes(buf.data(), buf.size(), 1), base);
}

// ---- Thread pool -----------------------------------------------------------------

TEST(ThreadPool, SubmitRunsEverythingBeforeWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(8, 1, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b), std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ZeroThreadsRunsInlineAndDefersBackground) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  int inline_ran = 0;
  pool.Submit([&] { ++inline_ran; });
  EXPECT_EQ(inline_ran, 1);  // Submit ran on the caller, immediately

  int background_ran = 0;
  pool.SubmitBackground([&] { ++background_ran; });
  EXPECT_EQ(background_ran, 0);  // deferred until idle-time drain
  EXPECT_EQ(pool.DrainBackground(), 1u);
  EXPECT_EQ(background_ran, 1);
}

TEST(ThreadPool, BackgroundRunsAfterForegroundDrains) {
  ThreadPool pool(2);
  std::atomic<int> foreground{0};
  std::atomic<int> background{0};
  pool.SubmitBackground([&] { background.fetch_add(1, std::memory_order_relaxed); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] { foreground.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();  // idle = both lanes empty, so background ran too
  EXPECT_EQ(foreground.load(), 20);
  EXPECT_EQ(background.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsCappedAndStable) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_LE(a.thread_count(), 8u);
}

}  // namespace
}  // namespace omos
