// Unit tests for src/support: Result, Error, string utilities, logging.
#include <gtest/gtest.h>

#include "src/support/error.h"
#include "src/support/log.h"
#include "src/support/result.h"
#include "src/support/strings.h"

namespace omos {
namespace {

TEST(Error, ToStringIncludesCodeAndMessage) {
  Error e(ErrorCode::kUnresolvedSymbol, "reference to _foo has no definition");
  EXPECT_EQ(e.ToString(), "unresolved-symbol: reference to _foo has no definition");
}

TEST(Error, EveryCodeHasAName) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(i)), "unknown");
  }
}

TEST(Result, ValueRoundTrip) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, ErrorRoundTrip) {
  Result<int> r = Err(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = OkResult();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Err(ErrorCode::kIoError, "disk on fire");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kIoError);
}

Result<int> Doubler(Result<int> in) {
  OMOS_TRY(int v, std::move(in));
  return v * 2;
}

TEST(Result, TryMacroPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  Result<int> failed = Doubler(Err(ErrorCode::kParseError, "x"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code(), ErrorCode::kParseError);
}

TEST(Strings, Split) {
  EXPECT_EQ(SplitString("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("/a/", '/'), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(SplitString("", '/'), (std::vector<std::string>{""}));
}

TEST(Strings, Strip) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(Strings, StrCat) {
  EXPECT_EQ(StrCat("sym ", "x", " at ", 16), "sym x at 16");
  EXPECT_EQ(StrCat(), "");
}

TEST(Strings, Hex32) {
  EXPECT_EQ(Hex32(0), "0x00000000");
  EXPECT_EQ(Hex32(0xdeadbeef), "0xdeadbeef");
}

TEST(Strings, Fnv1aStableAndDistinct) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1a(""), Fnv1a(std::string_view("\0", 1)));
}

TEST(Strings, RegexMatch) {
  EXPECT_TRUE(RegexMatch("_malloc", "^_malloc$"));
  EXPECT_FALSE(RegexMatch("_malloc2", "^_malloc$"));
  EXPECT_TRUE(RegexMatch("_malloc2", "_malloc"));  // substring search semantics
  EXPECT_TRUE(RegexMatch("c_17", "^(c_17|c_18)$"));
  EXPECT_FALSE(RegexMatch("x", "["));  // invalid pattern -> no match, no throw
}

TEST(Log, LevelGate) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kNone);
  LogMessage(LogLevel::kError, "test", "should be dropped silently");
  SetLogLevel(old);
}

}  // namespace
}  // namespace omos
