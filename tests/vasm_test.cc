// Unit tests for the assembler: directives, operands, labels, relocations,
// and error reporting with line numbers.
#include <gtest/gtest.h>

#include "src/isa/isa.h"
#include "src/vasm/assembler.h"
#include "tests/helpers.h"

namespace omos {
namespace {

Instruction FirstInsn(const ObjectFile& object) {
  auto result = DecodeInsn(object.section(SectionKind::kText).bytes.data());
  EXPECT_TRUE(result.ok());
  return result.value_or(Instruction{});
}

TEST(Assembler, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble("", "empty.o"));
  EXPECT_EQ(object.TotalSize(), 0u);
}

TEST(Assembler, CommentsIgnored) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
; full line comment
.text
  nop ; trailing comment
  nop # hash comment
)", "c.o"));
  EXPECT_EQ(object.section(SectionKind::kText).size(), 2 * kInsnSize);
}

TEST(Assembler, SemicolonInsideStringNotAComment) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(".data\ns: .asciiz \"a;b\"\n", "s.o"));
  const auto& data = object.section(SectionKind::kData).bytes;
  EXPECT_EQ(std::string(data.begin(), data.end()), std::string("a;b\0", 4));
}

TEST(Assembler, RegisterAliases) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(".text\n  mov sp, lr\n", "r.o"));
  Instruction insn = FirstInsn(object);
  EXPECT_EQ(insn.r1, kRegSp);
  EXPECT_EQ(insn.r2, kRegLr);
}

TEST(Assembler, NumericLiterals) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.text
  movi r0, 0x10
  movi r1, -5
  movi r2, 'A'
  movi r3, '\n'
)", "n.o"));
  const auto& text = object.section(SectionKind::kText).bytes;
  EXPECT_EQ(DecodeInsn(text.data())->imm, 0x10u);
  EXPECT_EQ(DecodeInsn(text.data() + 8)->imm, static_cast<uint32_t>(-5));
  EXPECT_EQ(DecodeInsn(text.data() + 16)->imm, static_cast<uint32_t>('A'));
  EXPECT_EQ(DecodeInsn(text.data() + 24)->imm, static_cast<uint32_t>('\n'));
}

TEST(Assembler, MemoryOperandForms) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.text
  ld r0, [r1]
  ld r0, [r1+8]
  ld r0, [r1-8]
  ld r0, [r11+-4]
)", "m.o"));
  const auto& text = object.section(SectionKind::kText).bytes;
  EXPECT_EQ(static_cast<int32_t>(DecodeInsn(text.data())->imm), 0);
  EXPECT_EQ(static_cast<int32_t>(DecodeInsn(text.data() + 8)->imm), 8);
  EXPECT_EQ(static_cast<int32_t>(DecodeInsn(text.data() + 16)->imm), -8);
  EXPECT_EQ(static_cast<int32_t>(DecodeInsn(text.data() + 24)->imm), -4);
}

TEST(Assembler, LabelsBecomeLocalSymbols) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.text
start:
  nop
here:
  nop
)", "l.o"));
  const Symbol* here = object.FindSymbol("here");
  ASSERT_NE(here, nullptr);
  EXPECT_EQ(here->binding, SymbolBinding::kLocal);
  EXPECT_EQ(here->value, kInsnSize);
}

TEST(Assembler, GlobalAndWeakDirectives) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.text
.global f
f: nop
.weak g
g: nop
)", "g.o"));
  EXPECT_EQ(object.FindSymbol("f")->binding, SymbolBinding::kGlobal);
  EXPECT_EQ(object.FindSymbol("g")->binding, SymbolBinding::kWeak);
}

TEST(Assembler, ExportAndHiddenDirectives) {
  // Visibility is orthogonal to binding: .export/.hidden annotate without
  // touching .global/.weak.
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.text
.global api
.export api
api: nop
.global helper
.hidden helper
helper: nop
.global plain
plain: nop
)", "v.o"));
  EXPECT_EQ(object.FindSymbol("api")->visibility, SymbolVisibility::kExported);
  EXPECT_EQ(object.FindSymbol("api")->binding, SymbolBinding::kGlobal);
  EXPECT_EQ(object.FindSymbol("helper")->visibility, SymbolVisibility::kHidden);
  EXPECT_EQ(object.FindSymbol("helper")->binding, SymbolBinding::kGlobal);
  EXPECT_EQ(object.FindSymbol("plain")->visibility, SymbolVisibility::kDefault);
  EXPECT_FALSE(object.default_hidden());
  EXPECT_TRUE(object.IsEffectivelyHidden(*object.FindSymbol("helper")));
  EXPECT_FALSE(object.IsEffectivelyHidden(*object.FindSymbol("plain")));
}

TEST(Assembler, DefaultHiddenDirective) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.default_hidden
.text
.global api
.export api
api: nop
.global internal
internal: nop
)", "dh.o"));
  EXPECT_TRUE(object.default_hidden());
  // Unannotated globals flip to hidden; explicit exports stay visible.
  EXPECT_TRUE(object.IsEffectivelyHidden(*object.FindSymbol("internal")));
  EXPECT_FALSE(object.IsEffectivelyHidden(*object.FindSymbol("api")));
}

TEST(Assembler, ExportOfUndefinedLabelFails) {
  auto result = Assemble(".text\n.export ghost\n  nop\n", "bad.o");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("ghost"), std::string::npos);
}

TEST(Assembler, SymbolOperandsEmitRelocations) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.text
  call external_fn      ; abs32
  callpc external_fn    ; pcrel32
  lea r0, buffer        ; abs32
  leapc r0, buffer      ; pcrel32
.bss
buffer: .space 4
)", "r.o"));
  const auto& relocs = object.section(SectionKind::kText).relocs;
  ASSERT_EQ(relocs.size(), 4u);
  EXPECT_EQ(relocs[0].kind, RelocKind::kAbs32);
  EXPECT_EQ(relocs[0].offset, 4u);  // imm field of insn 0
  EXPECT_EQ(relocs[1].kind, RelocKind::kPcRel32);
  EXPECT_EQ(relocs[2].kind, RelocKind::kAbs32);
  EXPECT_EQ(relocs[3].kind, RelocKind::kPcRel32);
  // external_fn became an undefined symbol; buffer a local defined one.
  EXPECT_FALSE(object.FindSymbol("external_fn")->defined);
  EXPECT_TRUE(object.FindSymbol("buffer")->defined);
}

TEST(Assembler, WordDirectiveWithSymbol) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.data
table: .word 7, target, 9
.text
target: nop
)", "w.o"));
  const auto& data = object.section(SectionKind::kData);
  EXPECT_EQ(data.bytes.size(), 12u);
  ASSERT_EQ(data.relocs.size(), 1u);
  EXPECT_EQ(data.relocs[0].offset, 4u);
  EXPECT_EQ(data.relocs[0].symbol, "target");
}

TEST(Assembler, ByteAsciiSpaceAlign) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.data
b: .byte 1, 2, 255
s: .ascii "ab"
z: .asciiz "cd"
.align 8
w: .word 5
.bss
.align 16
buf: .space 100
)", "d.o"));
  const auto& data = object.section(SectionKind::kData).bytes;
  // 3 bytes + "ab" + "cd\0" = 8 bytes, aligned to 8 -> word at offset 8.
  EXPECT_EQ(object.FindSymbol("w")->value, 8u);
  EXPECT_EQ(data.size(), 12u);
  EXPECT_EQ(data[2], 255);
  EXPECT_EQ(object.FindSymbol("buf")->value, 0u);
  EXPECT_EQ(object.section(SectionKind::kBss).bss_size, 100u);
}

TEST(Assembler, BssSymbolOffsets) {
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.bss
a: .space 8
b: .space 4
c: .space 4
)", "b.o"));
  EXPECT_EQ(object.FindSymbol("a")->value, 0u);
  EXPECT_EQ(object.FindSymbol("b")->value, 8u);
  EXPECT_EQ(object.FindSymbol("c")->value, 12u);
  EXPECT_EQ(object.section(SectionKind::kBss).bss_size, 16u);
}

// ---- Error cases, all carrying line numbers ----------------------------------

struct ErrorCase {
  const char* name;
  const char* source;
  const char* expect_substring;
};

class AssemblerErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(AssemblerErrors, ReportsLineAndReason) {
  auto result = Assemble(GetParam().source, "err.o");
  ASSERT_FALSE(result.ok()) << "expected failure";
  EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
  EXPECT_NE(result.error().message().find(GetParam().expect_substring), std::string::npos)
      << result.error().message();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        ErrorCase{"unknown_mnemonic", ".text\n  frob r0\n", "unknown mnemonic"},
        ErrorCase{"bad_operand_count", ".text\n  add r0, r1\n", "expects 3 operands"},
        ErrorCase{"register_wanted", ".text\n  mov 5, r1\n", "must be a register"},
        ErrorCase{"duplicate_label", ".text\nx: nop\nx: nop\n", "duplicate label"},
        ErrorCase{"insn_in_data", ".data\n  nop\n", "instruction outside .text"},
        ErrorCase{"unknown_directive", ".wibble 4\n", "unknown directive"},
        ErrorCase{"bad_space", ".data\n.space banana\n", "bad .space"},
        ErrorCase{"global_undefined", ".text\n.global nothing\n", "undefined label"},
        ErrorCase{"data_in_bss", ".bss\n.word 4\n", "only .space allowed in .bss"},
        ErrorCase{"bad_mem", ".text\n  ld r0, [5]\n", "bad base register"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) { return info.param.name; });

TEST(Assembler, ErrorMessagesIncludeLineNumbers) {
  auto result = Assemble(".text\n  nop\n  frob\n", "lines.o");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("lines.o:3:"), std::string::npos)
      << result.error().message();
}

}  // namespace
}  // namespace omos
