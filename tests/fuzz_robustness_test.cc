// Robustness sweeps: random and mutated inputs must produce clean Result
// errors, never crashes or hangs, across every parser in the system
// (assembler, blueprint reader, object/archive/image codecs, OC compiler) —
// and, under injected I/O/transport/storage faults, a whole server workload
// must either succeed (with retries) or fail with a clean typed Error.
#include <gtest/gtest.h>

#include "src/cc/compiler.h"
#include "src/core/server.h"
#include "src/core/sexpr.h"
#include "src/ipc/channel.h"
#include "src/linker/image_codec.h"
#include "src/objfmt/archive.h"
#include "src/objfmt/backend.h"
#include "src/support/faultsim.h"
#include "src/support/strings.h"
#include "src/vasm/assembler.h"
#include "tests/helpers.h"

namespace omos {
namespace {

class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed ^ 0xD1B54A32D192ED03ull) {}
  uint32_t Next(uint32_t bound) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>((state_ >> 33) % bound);
  }

 private:
  uint64_t state_;
};

std::string RandomText(Lcg& rng, size_t length, bool printable) {
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out.push_back(printable ? static_cast<char>(32 + rng.Next(95))
                            : static_cast<char>(rng.Next(256)));
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, AssemblerNeverCrashes) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 31337u);
  std::string source = RandomText(rng, 200 + rng.Next(400), /*printable=*/true);
  // Sprinkle plausible tokens so some inputs get deeper into the parser.
  static const char* kSeeds[] = {"\n.text\n", " movi r0, ", "\nlabel:", " call ", "\n.word "};
  for (int i = 0; i < 6; ++i) {
    source.insert(rng.Next(static_cast<uint32_t>(source.size())), kSeeds[rng.Next(5)]);
  }
  auto result = Assemble(source, "fuzz.o");
  if (!result.ok()) {
    EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
  }
}

TEST_P(ParserFuzz, BlueprintParserNeverCrashes) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 7541u);
  std::string text = RandomText(rng, 100 + rng.Next(200), /*printable=*/true);
  for (int i = 0; i < 8; ++i) {
    static const char* kSeeds[] = {"(", ")", "\"", "(merge ", "0x"};
    text.insert(rng.Next(static_cast<uint32_t>(text.size())), kSeeds[rng.Next(5)]);
  }
  (void)ParseSexpr(text);
  (void)ParseSexprs(text);
}

TEST_P(ParserFuzz, CompilerNeverCrashes) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 1299709u);
  std::string source = RandomText(rng, 150 + rng.Next(250), /*printable=*/true);
  static const char* kSeeds[] = {"int ", " main(", "{", "}", ";", "while(", "return ", "for("};
  for (int i = 0; i < 8; ++i) {
    source.insert(rng.Next(static_cast<uint32_t>(source.size())), kSeeds[rng.Next(8)]);
  }
  (void)CompileC(source);
}

TEST_P(ParserFuzz, ObjectCodecSurvivesBitFlips) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 65537u);
  ObjectFile object("victim.o");
  object.section(SectionKind::kText).bytes.resize(64);
  EXPECT_OK(object.DefineSymbol("f", SymbolBinding::kGlobal, SectionKind::kText, 0));
  object.ReferenceSymbol("g");
  object.AddReloc(SectionKind::kText, Relocation{4, RelocKind::kAbs32, "g", 0, {}});
  std::vector<uint8_t> bytes = EncodeObject(object);
  // Flip a handful of random bytes; decode must not crash. (It may still
  // succeed when the flips land in section payload bytes.)
  for (int flip = 0; flip < 8; ++flip) {
    bytes[rng.Next(static_cast<uint32_t>(bytes.size()))] ^=
        static_cast<uint8_t>(1 + rng.Next(255));
  }
  auto result = DecodeObject(bytes);
  if (result.ok()) {
    (void)result->Validate();
  }
}

TEST_P(ParserFuzz, ImageCodecSurvivesMutation) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 524287u);
  LinkedImage image;
  image.name = "fuzz";
  image.text.assign(128, 0xAA);
  image.data.assign(32, 0x55);
  image.symbols.push_back(ImageSymbol{"f", 0x100000, 8, SectionKind::kText});
  std::vector<uint8_t> bytes = EncodeImage(image);
  for (int flip = 0; flip < 6; ++flip) {
    bytes[rng.Next(static_cast<uint32_t>(bytes.size()))] ^=
        static_cast<uint8_t>(1 + rng.Next(255));
  }
  (void)DecodeImage(bytes);
}

TEST_P(ParserFuzz, ArchiveDecodeSurvivesRandomBytes) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 999331u);
  std::string raw = RandomText(rng, 64 + rng.Next(192), /*printable=*/false);
  std::vector<uint8_t> bytes(raw.begin(), raw.end());
  // Give some inputs the right magic so the body parser is exercised.
  if (GetParam() % 2 == 0 && bytes.size() > 4) {
    bytes[0] = 'X';
    bytes[1] = 'A';
    bytes[2] = 'R';
    bytes[3] = '1';
  }
  (void)Archive::Decode(bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 20));

// ---- Fault-plan sweep ---------------------------------------------------------
//
// Each seed derives a fault plan arming a random subset of every fault site
// in the tree with random triggers, then drives a complete smoke workload —
// define, instantiate over IPC with retries, exec, run, export to SimFs —
// under that plan. The invariant: every step either succeeds (and the
// program computes the right answer — no silent corruption) or fails with a
// clean typed Error. Crashes, hangs and wrong answers are the bugs.

class FaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultSweep, WorkloadSurvivesOrFailsCleanly) {
  Lcg rng(static_cast<uint64_t>(GetParam()) * 2654435761u);

  // A random subset of sites, each with a random trigger. Probability plans
  // are seeded from the sweep seed, so any failure replays exactly.
  static const char* kSites[] = {"fs.read",       "fs.write",     "pipe.drop",
                                 "pipe.truncate", "pipe.bitflip", "pipe.oversize",
                                 "port.drop",     "cache.bitrot"};
  FaultPlan plan;
  int armed = 1 + static_cast<int>(rng.Next(4));
  for (int i = 0; i < armed; ++i) {
    const char* site = kSites[rng.Next(8)];
    FaultSpec spec;
    switch (rng.Next(3)) {
      case 0:
        spec = FaultSpec::Nth(1 + rng.Next(6));
        break;
      case 1:
        spec = FaultSpec::Every(2 + rng.Next(5)).WithMaxFires(1 + rng.Next(3));
        break;
      default:
        spec = FaultSpec::Prob(0.05 + 0.10 * rng.Next(4), GetParam() * 7919u + i);
        break;
    }
    plan.Arm(site, spec.WithPayload(rng.Next(1u << 16)));
  }

  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(R"(
.text
.global _start
_start:
  call main
  sys 0
)", "crt0.o"));
  ASSERT_OK(server.AddFragment("/lib/crt0.o", std::move(crt0)));
  ASSERT_OK_AND_ASSIGN(ObjectFile main_obj, Assemble(R"(
.text
.global main
main:
  movi r0, 42
  ret
)", "main.o"));
  ASSERT_OK(server.AddFragment("/obj/main.o", std::move(main_obj)));
  ASSERT_OK(server.DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/main.o)"));

  ScopedFaultPlan scoped(std::move(plan));

  // 1. Instantiate through the resilient IPC path (stream transport, checksummed
  //    frames, retry policy). Success must produce a well-formed reply.
  Channel channel(MakeStreamTransport(
      [&server](const std::vector<uint8_t>& bytes) { return server.ServeMessage(bytes); },
      2000, 2));
  channel.set_retry_policy(RetryPolicy::Default());
  OmosRequest request;
  request.op = OmosOp::kInstantiate;
  request.path = "/bin/prog";
  auto reply = channel.Call(request, nullptr);
  if (reply.ok() && reply->ok) {
    EXPECT_NE(reply->entry, 0u);
  } else if (!reply.ok()) {
    EXPECT_NE(reply.error().ToString(), "");  // clean typed error, no crash
  }

  // 2. Exec + run. If every layer reports success the program's answer must
  //    be exactly right — faults may cause failure, never silent corruption.
  auto exec = server.IntegratedExec("/bin/prog", {"prog"});
  if (exec.ok()) {
    Task* task = kernel.FindTask(*exec);
    auto ran = kernel.RunTask(*task);
    if (ran.ok()) {
      EXPECT_EQ(task->exit_code(), 42) << "silent corruption under fault plan";
    }
  }

  // 3. Namespace export exercises the fs.write site.
  (void)server.ExportNamespaceToFs("/bin", "/fsbin");

  // 4. With the plan lifted, the server must be fully functional again —
  //    no fault leaves it wedged.
  FaultSim::Reset();
  auto clean = server.IntegratedExec("/bin/prog", {"prog"});
  ASSERT_OK(clean);
  Task* task = kernel.FindTask(*clean);
  ASSERT_OK(kernel.RunTask(*task));
  EXPECT_EQ(task->exit_code(), 42);
}

INSTANTIATE_TEST_SUITE_P(Plans, FaultSweep, ::testing::Range(0, 100));

}  // namespace
}  // namespace omos
