// The IPC wire protocol: full-field round trips, malformed-message
// rejection (parameterized truncation sweep), channel cost billing.
#include <gtest/gtest.h>

#include "src/ipc/channel.h"
#include "src/core/server.h"
#include "src/ipc/message.h"
#include "src/ipc/ring_transport.h"
#include "src/os/kernel.h"
#include "src/support/faultsim.h"
#include "src/support/metrics.h"
#include "tests/helpers.h"

namespace omos {
namespace {

OmosRequest SampleRequest() {
  OmosRequest request;
  request.op = OmosOp::kDynamicLoad;
  request.path = "(merge /obj/plugin.o)";
  request.specialization = "lib-constrained;T=0x01000000";
  request.task_handle = 42;
  request.symbols = {"plugin_entry", "plugin_data"};
  return request;
}

OmosReply SampleReply() {
  OmosReply reply;
  reply.ok = true;
  reply.entry = 0x101000;
  reply.segments = {SegmentDesc{0x101000, 0x2000, kProtRead | kProtExec, "prog.text"},
                    SegmentDesc{0x40001000, 0x1000, kProtRead | kProtWrite, "prog.data"}};
  reply.names = {"ls", "codegen"};
  reply.symbol_values = {0x101010, 0};
  reply.stat_hits = 1234;
  reply.stat_misses = 7;
  reply.generation = 77;
  return reply;
}

TEST(IpcMessage, RequestRoundTrip) {
  OmosRequest request = SampleRequest();
  ASSERT_OK_AND_ASSIGN(OmosRequest decoded, DecodeRequest(EncodeRequest(request)));
  EXPECT_EQ(decoded.op, request.op);
  EXPECT_EQ(decoded.path, request.path);
  EXPECT_EQ(decoded.specialization, request.specialization);
  EXPECT_EQ(decoded.task_handle, request.task_handle);
  EXPECT_EQ(decoded.symbols, request.symbols);
}

TEST(IpcMessage, ReplyRoundTrip) {
  OmosReply reply = SampleReply();
  ASSERT_OK_AND_ASSIGN(OmosReply decoded, DecodeReply(EncodeReply(reply)));
  EXPECT_EQ(decoded.ok, reply.ok);
  EXPECT_EQ(decoded.entry, reply.entry);
  ASSERT_EQ(decoded.segments.size(), 2u);
  EXPECT_EQ(decoded.segments[0].name, "prog.text");
  EXPECT_EQ(decoded.segments[1].prot, kProtRead | kProtWrite);
  EXPECT_EQ(decoded.names, reply.names);
  EXPECT_EQ(decoded.symbol_values, reply.symbol_values);
  EXPECT_EQ(decoded.stat_hits, 1234u);
  EXPECT_EQ(decoded.stat_misses, 7u);
  EXPECT_EQ(decoded.generation, 77u);
}

TEST(IpcMessage, ErrorReplyRoundTrip) {
  OmosReply reply;
  reply.ok = false;
  reply.error = "not-found: no such meta-object";
  ASSERT_OK_AND_ASSIGN(OmosReply decoded, DecodeReply(EncodeReply(reply)));
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, reply.error);
}

TEST(IpcMessage, WrongMagicRejected) {
  std::vector<uint8_t> reply_as_request = EncodeReply(SampleReply());
  auto result = DecodeRequest(reply_as_request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kProtocolError);

  std::vector<uint8_t> request_as_reply = EncodeRequest(SampleRequest());
  EXPECT_FALSE(DecodeReply(request_as_reply).ok());
}

TEST(IpcMessage, BadOpRejected) {
  std::vector<uint8_t> bytes = EncodeRequest(SampleRequest());
  bytes[4] = 99;  // op field follows the 4-byte magic
  auto result = DecodeRequest(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kProtocolError);
}

// Truncating a valid message at any point must produce a clean error.
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, RequestNeverCrashes) {
  std::vector<uint8_t> bytes = EncodeRequest(SampleRequest());
  size_t cut = bytes.size() * static_cast<size_t>(GetParam()) / 16;
  if (cut >= bytes.size()) {
    return;
  }
  std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
  EXPECT_FALSE(DecodeRequest(truncated).ok());
}

TEST_P(TruncationSweep, ReplyNeverCrashes) {
  std::vector<uint8_t> bytes = EncodeReply(SampleReply());
  size_t cut = bytes.size() * static_cast<size_t>(GetParam()) / 16;
  if (cut >= bytes.size()) {
    return;
  }
  std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
  EXPECT_FALSE(DecodeReply(truncated).ok());
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationSweep, ::testing::Range(0, 16));

TEST(Channel, BillsTaskSystemTime) {
  Kernel kernel;
  Task& task = kernel.CreateTask("client");
  uint64_t before = task.sys_cycles();
  Channel channel([](const std::vector<uint8_t>&) { return EncodeReply(OmosReply{}); }, 5000);
  ASSERT_OK(channel.Call(SampleRequest(), &task));
  EXPECT_EQ(task.sys_cycles() - before, 5000u);
  EXPECT_EQ(channel.calls_made(), 1u);
  EXPECT_EQ(channel.cycles_billed(), 0u);
}

TEST(Channel, BillsHostCounterWithoutTask) {
  Channel channel([](const std::vector<uint8_t>&) { return EncodeReply(OmosReply{}); }, 750);
  ASSERT_OK(channel.Call(SampleRequest(), nullptr));
  ASSERT_OK(channel.Call(SampleRequest(), nullptr));
  EXPECT_EQ(channel.cycles_billed(), 1500u);
}

TEST(Channel, MalformedServerReplyIsError) {
  Channel channel([](const std::vector<uint8_t>&) { return std::vector<uint8_t>{1, 2, 3}; }, 10);
  auto result = channel.Call(SampleRequest(), nullptr);
  ASSERT_FALSE(result.ok());  // truncated garbage -> parse error
}


// ---- Transports ---------------------------------------------------------------

TEST(Transport, BytePipeAndFraming) {
  BytePipe pipe;
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  WriteFrame(pipe, payload);
  EXPECT_EQ(pipe.buffered(), kFrameHeaderSize + 5);  // length + checksum + 5 bytes
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> read_back, ReadFrame(pipe));
  EXPECT_EQ(read_back, payload);
  EXPECT_EQ(pipe.buffered(), 0u);
}

TEST(Transport, FrameUnderrunDetected) {
  BytePipe pipe;
  uint8_t bogus_header[8] = {100, 0, 0, 0, 0, 0, 0, 0};  // claims 100 bytes
  pipe.Write(bogus_header, 8);
  uint8_t partial[10] = {0};
  pipe.Write(partial, 10);
  auto result = ReadFrame(pipe);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kProtocolError);
}

TEST(Transport, OversizedFrameRejected) {
  BytePipe pipe;
  uint8_t header[8] = {0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0};
  pipe.Write(header, 8);
  auto result = ReadFrame(pipe);
  ASSERT_FALSE(result.ok());
}

// Regression: a failed ReadFrame used to leave the unread tail in the pipe,
// so the next read misparsed payload bytes as a frame header and every
// subsequent frame on the stream was garbage. Any framing error now drains
// the pipe, and a fresh frame written afterwards round-trips cleanly.
TEST(Transport, FramingErrorDrainsPipeAndRecovers) {
  BytePipe pipe;
  uint8_t bogus_header[8] = {100, 0, 0, 0, 0, 0, 0, 0};  // claims 100 bytes
  pipe.Write(bogus_header, 8);
  uint8_t partial[10] = {7, 7, 7, 7, 7, 7, 7, 7, 7, 7};
  pipe.Write(partial, 10);
  ASSERT_FALSE(ReadFrame(pipe).ok());
  EXPECT_EQ(pipe.buffered(), 0u);  // the desync fix: no stale bytes survive
  std::vector<uint8_t> payload = {9, 8, 7};
  WriteFrame(pipe, payload);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> read_back, ReadFrame(pipe));
  EXPECT_EQ(read_back, payload);
}

TEST(Transport, BitFlipDetectedByChecksum) {
  BytePipe pipe;
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  WriteFrame(pipe, payload);
  pipe.FlipBits(kFrameHeaderSize + 2, 0x10);  // damage a payload byte in flight
  auto result = ReadFrame(pipe);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCorrupted);
  EXPECT_EQ(pipe.buffered(), 0u);
}

// ---- Fault injection and retry ------------------------------------------------

std::vector<uint8_t> OkServer(const std::vector<uint8_t>& request) {
  OmosReply reply;
  reply.ok = true;
  auto decoded = DecodeRequest(request);
  if (decoded.ok()) {
    reply.names.push_back(decoded->path);
  }
  return EncodeReply(reply);
}

TEST(Transport, StreamRecoversAfterTruncatedFrame) {
  Channel channel(MakeStreamTransport(OkServer, 1000, 2));
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  {
    ScopedFaultPlan plan(FaultPlan().Arm("pipe.truncate", FaultSpec::Nth(1)));
    auto first = channel.Call(request, nullptr);
    ASSERT_FALSE(first.ok());  // the damaged frame surfaces as a typed error
    EXPECT_TRUE(IsRetryableError(first.error().code()));
    // The stream resynchronized: the very next call succeeds with no retry.
    ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
    EXPECT_TRUE(reply.ok);
  }
  EXPECT_EQ(channel.retries_made(), 0u);
}

TEST(Channel, RetryPolicySurvivesDroppedMessage) {
  Channel channel(OkServer, /*round_trip_cost=*/1000);
  channel.set_retry_policy(RetryPolicy::Default());
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ScopedFaultPlan plan(FaultPlan().Arm("port.drop", FaultSpec::Nth(1)));
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(channel.retries_made(), 1u);
  EXPECT_EQ(channel.backoff_cycles_billed(), RetryPolicy::Default().base_backoff_cycles);
  // Both attempts' wire cost plus the backoff wait are billed.
  EXPECT_EQ(channel.cycles_billed(), 2 * 1000u + channel.backoff_cycles_billed());
}

TEST(Channel, RetryBacksOffExponentiallyAndBillsTask) {
  Kernel kernel;
  Task& task = kernel.CreateTask("client");
  Channel channel(MakeStreamTransport(OkServer, /*base=*/100, /*per_byte=*/0));
  channel.set_retry_policy(RetryPolicy{/*max_attempts=*/4, /*base=*/500, /*max=*/8000});
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  // Drop the first two request frames; the third attempt gets through.
  ScopedFaultPlan plan(FaultPlan().Arm("pipe.drop", FaultSpec::Every(1).WithMaxFires(2)));
  uint64_t before = task.sys_cycles();
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, &task));
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(channel.retries_made(), 2u);
  EXPECT_EQ(channel.backoff_cycles_billed(), 500u + 1000u);  // 500 << 0, 500 << 1
  EXPECT_GE(task.sys_cycles() - before, channel.backoff_cycles_billed());
}

TEST(Channel, NonRetryableWithoutPolicy) {
  Channel channel(OkServer, /*round_trip_cost=*/10);
  ScopedFaultPlan plan(FaultPlan().Arm("port.drop", FaultSpec::Nth(1)));
  auto result = channel.Call(SampleRequest(), nullptr);
  ASSERT_FALSE(result.ok());  // RetryPolicy::None fails fast
  EXPECT_EQ(result.error().code(), ErrorCode::kTimeout);
}

TEST(Channel, RetriesExhaustedSurfacesLastError) {
  Channel channel(OkServer, /*round_trip_cost=*/10);
  channel.set_retry_policy(RetryPolicy{/*max_attempts=*/3, /*base=*/100, /*max=*/200});
  ScopedFaultPlan plan(FaultPlan().Arm("port.drop", FaultSpec::Every(1)));
  auto result = channel.Call(SampleRequest(), nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kTimeout);
  EXPECT_EQ(channel.retries_made(), 2u);
  // Even the failed call bills its wire and backoff time: 3 trips + 100 + 200.
  EXPECT_EQ(channel.cycles_billed(), 3 * 10u + 100u + 200u);
}

TEST(Transport, StreamChannelDeliversAndBillsPerByte) {
  auto echo = [](const std::vector<uint8_t>& request) {
    OmosReply reply;
    reply.ok = true;
    auto decoded = DecodeRequest(request);
    if (decoded.ok()) {
      reply.names.push_back(decoded->path);
    }
    return EncodeReply(reply);
  };
  Channel port_channel(echo, /*round_trip_cost=*/1000);
  Channel stream_channel(MakeStreamTransport(echo, /*base=*/1000, /*per_byte=*/3));

  OmosRequest small;
  small.op = OmosOp::kListNamespace;
  small.path = "/bin";
  OmosRequest large = small;
  large.path = std::string(512, 'x');

  ASSERT_OK_AND_ASSIGN(OmosReply via_port, port_channel.Call(small, nullptr));
  ASSERT_OK_AND_ASSIGN(OmosReply via_stream, stream_channel.Call(small, nullptr));
  EXPECT_EQ(via_port.names, via_stream.names);  // transport-agnostic result
  uint64_t small_cost = stream_channel.cycles_billed();
  ASSERT_OK(stream_channel.Call(large, nullptr));
  uint64_t large_cost = stream_channel.cycles_billed() - small_cost;
  // Stream cost grows with payload; port cost is flat.
  EXPECT_GT(large_cost, small_cost);
  ASSERT_OK(port_channel.Call(large, nullptr));
  EXPECT_EQ(port_channel.cycles_billed(), 2000u);
}

// The empty pipe and the damaged pipe are different failures: a clean EOF
// mid-poll is kUnavailable (peer closed, nothing to drain), while a frame
// that lies about its length is kProtocolError (framing lost, pipe drained).
TEST(Transport, EmptyPipeReadIsPeerClosed) {
  BytePipe pipe;
  auto result = ReadFrame(pipe);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnavailable);
}

TEST(Transport, PartialHeaderIsFramingLost) {
  BytePipe pipe;
  uint8_t stub[3] = {1, 2, 3};  // less than a frame header
  pipe.Write(stub, 3);
  auto result = ReadFrame(pipe);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kProtocolError);
  EXPECT_EQ(pipe.buffered(), 0u);  // framing loss drains; EOF would not
}

// ---- Ring transport -----------------------------------------------------------

TEST(Ring, MessageSpansSlotsAndWraps) {
  SharedMemoryRing ring(4, 16);
  for (int round = 0; round < 10; ++round) {
    std::vector<uint8_t> message(24, static_cast<uint8_t>(round));  // 2 slots
    ASSERT_OK(ring.Push(message));
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> back, ring.Pop());
    EXPECT_EQ(back, message);
  }
  EXPECT_GT(ring.wraps(), 0u);  // 20 slots through a 4-slot ring
  EXPECT_TRUE(ring.empty());
}

TEST(Ring, BackpressureWhenFull) {
  SharedMemoryRing ring(4, 16);
  std::vector<uint8_t> message(16, 7);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(ring.Push(message));
  }
  auto full = ring.Push(message);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code(), ErrorCode::kUnavailable);
  ASSERT_OK(ring.Pop());
  ASSERT_OK(ring.Push(message));  // the freed slot is reusable
}

TEST(Ring, OversizedMessageRejected) {
  SharedMemoryRing ring(2, 16);
  auto result = ring.Push(std::vector<uint8_t>(64, 1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

TEST(Ring, EmptyPopUnavailable) {
  SharedMemoryRing ring(4, 16);
  auto result = ring.Pop();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnavailable);
}

TEST(Ring, CorruptionDetectedAndRingRecovers) {
  SharedMemoryRing ring(4, 16);
  std::vector<uint8_t> message = {1, 2, 3, 4, 5};
  ASSERT_OK(ring.Push(message));
  ring.CorruptByte(0, 2, 0x40);
  auto result = ring.Pop();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCorrupted);
  EXPECT_EQ(ring.corruptions_seen(), 1u);
  EXPECT_TRUE(ring.empty());  // Reset reclaimed the damaged slots
  ASSERT_OK(ring.Push(message));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> back, ring.Pop());
  EXPECT_EQ(back, message);
}

TEST(Transport, RingChannelDeliversAndBillsHandoff) {
  RingConfig config;
  Channel channel(MakeRingTransport(OkServer, config));
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  EXPECT_TRUE(reply.ok);
  // One slot each direction: only the doorbell handoff is billed.
  EXPECT_EQ(channel.cycles_billed(), config.handoff_cost);
}

TEST(Transport, RingSlotCorruptionRecoveredByRetry) {
  Channel channel(MakeRingTransport(OkServer, RingConfig()));
  channel.set_retry_policy(RetryPolicy::Default());
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ScopedFaultPlan plan(FaultPlan().Arm("ring.corrupt", FaultSpec::Nth(1)));
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(channel.retries_made(), 1u);  // kCorrupted is retryable
}

TEST(Transport, RingStallSurfacesTimeoutThenRecovers) {
  RingConfig config;
  Channel channel(MakeRingTransport(OkServer, config));
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  {
    ScopedFaultPlan plan(FaultPlan().Arm("ring.stall", FaultSpec::Nth(1)));
    auto stalled = channel.Call(request, nullptr);
    ASSERT_FALSE(stalled.ok());
    EXPECT_EQ(stalled.error().code(), ErrorCode::kTimeout);
    // The bounded spin on the dead doorbell was billed in simulated time.
    EXPECT_GE(channel.cycles_billed(), config.stall_spin_cycles);
  }
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  EXPECT_TRUE(reply.ok);  // slots were reclaimed; the ring is clean
}

TEST(Transport, PersistentRingCorruptionFallsBackToStream) {
  // Seeded fault: every ring round trip corrupts. Two consecutive kCorrupted
  // attempts hit the demotion threshold, the channel swaps to the armed
  // stream transport mid-call, and the request still succeeds — clients
  // never observe the swap except through the counter.
  Channel channel(MakeRingTransport(OkServer, RingConfig()));
  channel.set_retry_policy(RetryPolicy::Default());
  channel.ArmFallbackTransport(MakeStreamTransport(OkServer, 1000, 2), /*threshold=*/2);
  Counter* fallbacks = MetricsRegistry::Global().GetCounter("ipc.transport_fallbacks");
  uint64_t before = fallbacks->value();
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ScopedFaultPlan plan(FaultPlan().Arm("ring.corrupt", FaultSpec::Every(1)));
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  EXPECT_TRUE(reply.ok);
  EXPECT_TRUE(channel.fallback_engaged());
  EXPECT_EQ(fallbacks->value(), before + 1);
  // The demotion is permanent: later calls ride the stream and never touch
  // the damaged ring again, so the still-armed fault plan cannot fire.
  ASSERT_OK_AND_ASSIGN(OmosReply again, channel.Call(request, nullptr));
  EXPECT_TRUE(again.ok);
  EXPECT_EQ(fallbacks->value(), before + 1);
}

TEST(Transport, TransientRingCorruptionDoesNotDemote) {
  // One corrupted slot, then clean traffic: the retry absorbs it and the
  // streak reset keeps the channel on the (cheaper) ring.
  Channel channel(MakeRingTransport(OkServer, RingConfig()));
  channel.set_retry_policy(RetryPolicy::Default());
  channel.ArmFallbackTransport(MakeStreamTransport(OkServer, 1000, 2), /*threshold=*/2);
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  for (int i = 0; i < 3; ++i) {
    ScopedFaultPlan plan(FaultPlan().Arm("ring.corrupt", FaultSpec::Nth(1)));
    ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
    EXPECT_TRUE(reply.ok);
  }
  EXPECT_FALSE(channel.fallback_engaged());
}

TEST(Transport, RingRepromotedAfterQuietPeriod) {
  // The ring corrupts exactly twice (a transient mapping glitch), demoting
  // the channel to the stream. After `repromote_after` clean exchanges the
  // channel probes the ring again; the glitch has passed, so the probe
  // delivers and the channel rides the cheap ring from then on.
  Channel channel(MakeRingTransport(OkServer, RingConfig()));
  channel.set_retry_policy(RetryPolicy::Default());
  channel.ArmFallbackTransport(MakeStreamTransport(OkServer, 1000, 2), /*threshold=*/2,
                               /*repromote_after=*/2);
  Counter* repromotions = MetricsRegistry::Global().GetCounter("ipc.transport_repromotions");
  uint64_t before = repromotions->value();
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ScopedFaultPlan plan(
      FaultPlan().Arm("ring.corrupt", FaultSpec::Every(1).WithMaxFires(2)));
  // Two corrupted ring attempts demote mid-call; the stream finishes it.
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  EXPECT_TRUE(reply.ok);
  ASSERT_TRUE(channel.fallback_engaged());
  // One more clean stream exchange completes the quiet period.
  ASSERT_OK_AND_ASSIGN(OmosReply quiet, channel.Call(request, nullptr));
  EXPECT_TRUE(quiet.ok);
  EXPECT_TRUE(channel.fallback_engaged());
  // This exchange probes the (now healthy) ring and re-promotes it.
  ASSERT_OK_AND_ASSIGN(OmosReply probe, channel.Call(request, nullptr));
  EXPECT_TRUE(probe.ok);
  EXPECT_FALSE(channel.fallback_engaged());
  EXPECT_EQ(repromotions->value(), before + 1);
}

TEST(Transport, FailedRepromotionProbeRetreatsToStream) {
  // The ring stays damaged (every slot corrupts): the re-promotion probe
  // hits the corruption, retreats to the stream within the same call, and
  // the request still succeeds. The channel remains demoted.
  Channel channel(MakeRingTransport(OkServer, RingConfig()));
  channel.set_retry_policy(RetryPolicy::Default());
  channel.ArmFallbackTransport(MakeStreamTransport(OkServer, 1000, 2), /*threshold=*/2,
                               /*repromote_after=*/2);
  Counter* repromotions = MetricsRegistry::Global().GetCounter("ipc.transport_repromotions");
  uint64_t before = repromotions->value();
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ScopedFaultPlan plan(FaultPlan().Arm("ring.corrupt", FaultSpec::Every(1)));
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  EXPECT_TRUE(reply.ok);
  ASSERT_TRUE(channel.fallback_engaged());
  for (int i = 0; i < 4; ++i) {
    // Calls 1-2 complete the quiet period; call 3 probes, retreats, and
    // still delivers on the stream; call 4 starts a fresh quiet period.
    ASSERT_OK_AND_ASSIGN(OmosReply again, channel.Call(request, nullptr));
    EXPECT_TRUE(again.ok);
    EXPECT_TRUE(channel.fallback_engaged());
  }
  EXPECT_EQ(repromotions->value(), before);
}

TEST(Transport, OmosServerReachableOverRingTransport) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK(server.DefineMeta(
      "/bin/thing",
      "(merge (source \"asm\" \".text\\n.global _start\\n_start:\\n  sys 0\\n\"))"));
  server.SetExecTransport(OmosServer::ExecTransport::kRing);
  Channel channel = server.MakeChannel();
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  ASSERT_TRUE(reply.ok);
  ASSERT_EQ(reply.names.size(), 1u);
  EXPECT_EQ(reply.names[0], "thing");
  EXPECT_GT(reply.generation, 0u);  // every reply carries the generation
}

// ---- Request batching ---------------------------------------------------------

TEST(IpcMessage, BatchRoundTrip) {
  std::vector<OmosRequest> requests(3, SampleRequest());
  requests[1].path = "/obj/other.o";
  std::vector<uint8_t> wire = EncodeRequestBatch(requests);
  EXPECT_TRUE(IsBatchRequest(wire));
  EXPECT_FALSE(IsBatchRequest(EncodeRequest(requests[0])));
  ASSERT_OK_AND_ASSIGN(std::vector<OmosRequest> decoded, DecodeRequestBatch(wire));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[1].path, "/obj/other.o");
  EXPECT_EQ(decoded[2].symbols, requests[2].symbols);

  std::vector<OmosReply> replies(2, SampleReply());
  replies[1].ok = false;
  replies[1].error = "boom";
  std::vector<uint8_t> reply_wire = EncodeReplyBatch(replies);
  EXPECT_TRUE(IsBatchReply(reply_wire));
  ASSERT_OK_AND_ASSIGN(std::vector<OmosReply> decoded_replies, DecodeReplyBatch(reply_wire));
  ASSERT_EQ(decoded_replies.size(), 2u);
  EXPECT_TRUE(decoded_replies[0].ok);
  EXPECT_FALSE(decoded_replies[1].ok);
  EXPECT_EQ(decoded_replies[1].error, "boom");
  EXPECT_EQ(decoded_replies[0].generation, 77u);
}

TEST(IpcMessage, EmptyBatchIsProtocolError) {
  auto result = DecodeRequestBatch(EncodeRequestBatch({}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kProtocolError);
}

TEST(Channel, BatchSharesOneRoundTrip) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK(server.DefineMeta(
      "/bin/thing",
      "(merge (source \"asm\" \".text\\n.global _start\\n_start:\\n  sys 0\\n\"))"));
  Channel channel = server.MakeChannel(OmosServer::ExecTransport::kRing);
  OmosRequest ping;
  ping.op = OmosOp::kListNamespace;
  ping.path = "/bin";
  std::vector<OmosRequest> requests(8, ping);
  ASSERT_OK_AND_ASSIGN(std::vector<OmosReply> replies, channel.CallBatch(requests, nullptr));
  ASSERT_EQ(replies.size(), 8u);
  for (const OmosReply& reply : replies) {
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.names, std::vector<std::string>{"thing"});
  }
  EXPECT_EQ(channel.calls_made(), 1u);  // one frame, one round trip
}

// One bad member must not poison the other N-1: it comes back ok=false in
// its slot while its neighbours succeed.
TEST(Channel, BatchPartialFailureIsolated) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK(server.DefineMeta(
      "/bin/thing",
      "(merge (source \"asm\" \".text\\n.global _start\\n_start:\\n  sys 0\\n\"))"));
  Channel channel = server.MakeChannel(OmosServer::ExecTransport::kRing);
  OmosRequest good;
  good.op = OmosOp::kListNamespace;
  good.path = "/bin";
  OmosRequest bad;
  bad.op = OmosOp::kInstantiate;
  bad.path = "/bin/thing";
  bad.task_handle = 9999;  // no such task
  std::vector<OmosRequest> requests = {good, bad, good};
  ASSERT_OK_AND_ASSIGN(std::vector<OmosReply> replies, channel.CallBatch(requests, nullptr));
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(replies[0].ok);
  EXPECT_FALSE(replies[1].ok);
  EXPECT_EQ(replies[1].error, "bad task handle");
  EXPECT_TRUE(replies[2].ok);
}

// Seeded fault sweep: under probabilistic slot corruption and stalls the
// retry machinery must always converge to a fully correct batch reply.
TEST(Channel, BatchSurvivesSeededFaultSweep) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK(server.DefineMeta(
      "/bin/thing",
      "(merge (source \"asm\" \".text\\n.global _start\\n_start:\\n  sys 0\\n\"))"));
  OmosRequest ping;
  ping.op = OmosOp::kListNamespace;
  ping.path = "/bin";
  std::vector<OmosRequest> requests(5, ping);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Channel channel = server.MakeChannel(OmosServer::ExecTransport::kRing);
    channel.set_retry_policy(RetryPolicy{/*max_attempts=*/8, /*base=*/100, /*max=*/800});
    ScopedFaultPlan plan(FaultPlan()
                             .Arm("ring.corrupt", FaultSpec::Prob(0.2, seed).WithMaxFires(3))
                             .Arm("ring.stall", FaultSpec::Prob(0.1, seed + 100).WithMaxFires(2)));
    ASSERT_OK_AND_ASSIGN(std::vector<OmosReply> replies, channel.CallBatch(requests, nullptr));
    ASSERT_EQ(replies.size(), 5u);
    for (const OmosReply& reply : replies) {
      ASSERT_TRUE(reply.ok) << "seed " << seed;
      EXPECT_EQ(reply.names, std::vector<std::string>{"thing"}) << "seed " << seed;
    }
  }
}

// ---- Stub cache ---------------------------------------------------------------

constexpr const char* kThingBlueprint =
    "(merge (source \"asm\" \".text\\n.global _start\\n_start:\\n  sys 0\\n\"))";

TEST(Channel, StubCacheWarmRepeatMakesZeroRoundTrips) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK(server.DefineMeta("/bin/thing", kThingBlueprint));
  Task& task = kernel.CreateTask("client");
  Channel channel = server.MakeChannel(OmosServer::ExecTransport::kRing);
  channel.EnableStubCache();
  OmosRequest request;
  request.op = OmosOp::kInstantiate;
  request.path = "/bin/thing";
  request.specialization = Specialization().ToKeyString();
  request.task_handle = task.id();
  ASSERT_OK_AND_ASSIGN(OmosReply cold, channel.Call(request, nullptr));
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(channel.calls_made(), 1u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(OmosReply warm, channel.Call(request, nullptr));
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.entry, cold.entry);
  }
  EXPECT_EQ(channel.calls_made(), 1u);  // warm repeats never hit the wire
  EXPECT_EQ(channel.stub_hits(), 5u);
}

TEST(Channel, RedefinitionInvalidatesStubCache) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK(server.DefineMeta("/bin/thing", kThingBlueprint));
  Task& task = kernel.CreateTask("client");
  Channel channel = server.MakeChannel(OmosServer::ExecTransport::kRing);
  channel.EnableStubCache();
  OmosRequest request;
  request.op = OmosOp::kInstantiate;
  request.path = "/bin/thing";
  request.specialization = Specialization().ToKeyString();
  request.task_handle = task.id();
  ASSERT_OK_AND_ASSIGN(OmosReply first, channel.Call(request, nullptr));
  ASSERT_TRUE(first.ok);
  uint64_t old_generation = channel.observed_generation();
  // Sanity: right now the entry is warm and repeats are served locally.
  ASSERT_OK(channel.Call(request, nullptr));
  EXPECT_EQ(channel.stub_hits(), 1u);

  // Redefine on the server: the namespace generation bumps, and the next
  // server contact on this channel carries it back and purges the cache.
  ASSERT_OK(server.DefineMeta("/bin/thing", kThingBlueprint));
  OmosRequest ping;
  ping.op = OmosOp::kListNamespace;
  ping.path = "/bin";
  ASSERT_OK(channel.Call(ping, nullptr));
  EXPECT_GT(channel.observed_generation(), old_generation);

  // The stale entry is gone: the repeat goes all the way to the server
  // (which answers authoritatively for the redefined object) instead of
  // being served from the cache.
  uint64_t calls_before = channel.calls_made();
  uint64_t hits_before = channel.stub_hits();
  ASSERT_OK(channel.Call(request, nullptr));
  EXPECT_EQ(channel.calls_made(), calls_before + 1);  // wire round trip
  EXPECT_EQ(channel.stub_hits(), hits_before);        // not a cache answer
}

TEST(Channel, StubCacheMissesWhenDisabled) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK(server.DefineMeta("/bin/thing", kThingBlueprint));
  Task& task = kernel.CreateTask("client");
  Channel channel = server.MakeChannel();
  OmosRequest request;
  request.op = OmosOp::kInstantiate;
  request.path = "/bin/thing";
  request.specialization = Specialization().ToKeyString();
  request.task_handle = task.id();
  ASSERT_OK(channel.Call(request, nullptr));
  ASSERT_OK(channel.Call(request, nullptr));
  EXPECT_EQ(channel.calls_made(), 2u);  // no cache armed: every call pays
  EXPECT_EQ(channel.stub_hits(), 0u);
}

TEST(Transport, OmosServerReachableOverStreamTransport) {
  Kernel kernel;
  OmosServer server(kernel);
  ASSERT_OK(server.DefineMeta("/bin/thing", "(merge (source \"asm\" \".text\\n.global _start\\n_start:\\n  sys 0\\n\"))"));
  Channel channel(MakeStreamTransport(
      [&server](const std::vector<uint8_t>& bytes) { return server.ServeMessage(bytes); },
      2000, 2));
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  ASSERT_TRUE(reply.ok);
  ASSERT_EQ(reply.names.size(), 1u);
  EXPECT_EQ(reply.names[0], "thing");
  EXPECT_GT(channel.cycles_billed(), 2000u);
}

}  // namespace
}  // namespace omos
