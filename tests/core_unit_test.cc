// Unit tests for the core server's components: blueprint parser, namespace,
// constraint solver, image cache, specialization keys.
#include <gtest/gtest.h>

#include "src/core/cache.h"
#include "src/core/constraints.h"
#include "src/core/namespace.h"
#include "src/core/server.h"
#include "src/core/sexpr.h"
#include "src/support/faultsim.h"
#include "src/support/strings.h"
#include "tests/helpers.h"

namespace omos {
namespace {

// ---- S-expressions -------------------------------------------------------------

TEST(Sexpr, ParsesAtomsAndLists) {
  ASSERT_OK_AND_ASSIGN(Sexpr e, ParseSexpr("(merge /lib/crt0.o \"str\" 0x100 (list a))"));
  ASSERT_EQ(e.kind, Sexpr::Kind::kList);
  ASSERT_EQ(e.children.size(), 5u);
  EXPECT_EQ(e.children[0].atom, "merge");
  EXPECT_EQ(e.children[1].atom, "/lib/crt0.o");
  EXPECT_EQ(e.children[2].kind, Sexpr::Kind::kString);
  EXPECT_EQ(e.children[2].atom, "str");
  EXPECT_EQ(e.children[3].kind, Sexpr::Kind::kNumber);
  EXPECT_EQ(e.children[3].number, 0x100u);
  EXPECT_EQ(e.children[4].kind, Sexpr::Kind::kList);
}

TEST(Sexpr, CommentsAndEscapes) {
  ASSERT_OK_AND_ASSIGN(Sexpr e, ParseSexpr("(source \"c\" \"int x = 0;\\n\") ; trailing"));
  EXPECT_EQ(e.children[2].atom, "int x = 0;\n");
}

TEST(Sexpr, ToStringRoundTrips) {
  const char* text = "(hide \"_REAL_malloc\" (merge (restrict \"^_malloc$\" /bin/ls.o)))";
  ASSERT_OK_AND_ASSIGN(Sexpr e, ParseSexpr(text));
  ASSERT_OK_AND_ASSIGN(Sexpr again, ParseSexpr(e.ToString()));
  EXPECT_EQ(e.ToString(), again.ToString());
}

TEST(Sexpr, Errors) {
  EXPECT_FALSE(ParseSexpr("(unterminated").ok());
  EXPECT_FALSE(ParseSexpr(")").ok());
  EXPECT_FALSE(ParseSexpr("(a) trailing").ok());
  EXPECT_FALSE(ParseSexpr("\"unterminated string").ok());
  EXPECT_FALSE(ParseSexpr("").ok());
}

TEST(Sexpr, ParseSequence) {
  ASSERT_OK_AND_ASSIGN(auto exprs, ParseSexprs("(a) (b c)\n(d)"));
  EXPECT_EQ(exprs.size(), 3u);
}

// ---- Namespace ------------------------------------------------------------------

TEST(Namespace, DefineAndLookup) {
  OmosNamespace ns;
  ASSERT_OK(ns.DefineMeta("/bin/prog", "(merge /obj/a.o)"));
  ASSERT_OK_AND_ASSIGN(const NamespaceEntry* entry, ns.Lookup("/bin/prog"));
  EXPECT_EQ(entry->kind, EntryKind::kMeta);
  EXPECT_FALSE(ns.Lookup("/bin/other").ok());
  EXPECT_TRUE(ns.Exists("bin/prog"));  // normalization
}

TEST(Namespace, LibraryRecordsParsed) {
  OmosNamespace ns;
  ASSERT_OK(ns.DefineMeta("/lib/libc", R"(
(constraint-list "T" 0x100000 "D" 0x40200000)
(default-specialization "lib-constrained")
(merge /libc/gen /libc/stdio)
)"));
  ASSERT_OK_AND_ASSIGN(const NamespaceEntry* entry, ns.Lookup("/lib/libc"));
  EXPECT_EQ(entry->kind, EntryKind::kLibrary);  // records imply library
  EXPECT_EQ(entry->hints.text_base, 0x100000u);
  EXPECT_EQ(entry->hints.data_base, 0x40200000u);
  EXPECT_EQ(entry->default_spec, "lib-constrained");
}

TEST(Namespace, RejectsMultipleConstructions) {
  OmosNamespace ns;
  auto result = ns.DefineMeta("/x", "(merge a) (merge b)");
  ASSERT_FALSE(result.ok());
}

TEST(Namespace, ListChildren) {
  OmosNamespace ns;
  ASSERT_OK(ns.DefineMeta("/bin/ls", "(merge /a)"));
  ASSERT_OK(ns.DefineMeta("/bin/cat", "(merge /a)"));
  ASSERT_OK(ns.DefineMeta("/bin/tools/strip", "(merge /a)"));
  auto names = ns.List("/bin");
  EXPECT_EQ(names, (std::vector<std::string>{"cat", "ls", "tools"}));
}

// ---- Constraint solver -----------------------------------------------------------

TEST(Constraints, FirstFitWithoutHints) {
  ConstraintSolver solver;
  ASSERT_OK_AND_ASSIGN(Placement a, solver.Place("a", 0x5000, 0x1000));
  ASSERT_OK_AND_ASSIGN(Placement b, solver.Place("b", 0x5000, 0x1000));
  EXPECT_NE(a.text_base, b.text_base);
  EXPECT_GE(b.text_base, a.text_base + 0x5000);
}

TEST(Constraints, ReusePlacementForSameObject) {
  ConstraintSolver solver;
  ASSERT_OK_AND_ASSIGN(Placement first, solver.Place("libc", 0x10000, 0x2000));
  EXPECT_FALSE(first.reused);
  ASSERT_OK_AND_ASSIGN(Placement second, solver.Place("libc", 0x10000, 0x2000));
  EXPECT_TRUE(second.reused);
  EXPECT_EQ(second.text_base, first.text_base);
}

TEST(Constraints, GrowingObjectGetsNewPlacement) {
  ConstraintSolver solver;
  ASSERT_OK_AND_ASSIGN(Placement small, solver.Place("lib", 0x1000, 0x1000));
  ASSERT_OK_AND_ASSIGN(Placement big, solver.Place("lib", 0x100000, 0x1000));
  EXPECT_FALSE(big.reused);
  (void)small;
}

TEST(Constraints, HintHonouredWhenFree) {
  ConstraintSolver solver;
  PlacementHints hints;
  hints.text_base = 0x02000000;
  ASSERT_OK_AND_ASSIGN(Placement p, solver.Place("lib", 0x1000, 0x1000, hints));
  EXPECT_EQ(p.text_base, 0x02000000u);
  EXPECT_TRUE(solver.conflicts().empty());
}

TEST(Constraints, ConflictSpillsAndRecords) {
  ConstraintSolver solver;
  PlacementHints hints;
  hints.text_base = 0x02000000;
  ASSERT_OK(solver.Place("first", 0x4000, 0x1000, hints));
  ASSERT_OK_AND_ASSIGN(Placement second, solver.Place("second", 0x4000, 0x1000, hints));
  EXPECT_NE(second.text_base, 0x02000000u);
  ASSERT_EQ(solver.conflicts().size(), 1u);
  EXPECT_EQ(solver.conflicts()[0].object, "second");
  EXPECT_EQ(solver.conflicts()[0].holder, "first");
}

TEST(Constraints, ReleaseFreesRange) {
  ConstraintSolver solver;
  PlacementHints hints;
  hints.text_base = 0x02000000;
  ASSERT_OK(solver.Place("a", 0x1000, 0x1000, hints));
  solver.Release("a");
  ASSERT_OK_AND_ASSIGN(Placement b, solver.Place("b", 0x1000, 0x1000, hints));
  EXPECT_EQ(b.text_base, 0x02000000u);
}

TEST(Constraints, ExhaustionReported) {
  SolverArenas arenas;
  arenas.text_lo = 0x100000;
  arenas.text_hi = 0x103000;  // room for 3 pages only
  ConstraintSolver solver(arenas);
  ASSERT_OK(solver.Place("a", 0x2000, 0x1000));
  auto result = solver.Place("b", 0x2000, 0x1000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kConstraintConflict);
}

TEST(Constraints, ExhaustionRecoversAfterRelease) {
  SolverArenas arenas;
  arenas.text_lo = 0x100000;
  arenas.text_hi = 0x103000;
  ConstraintSolver solver(arenas);
  ASSERT_OK(solver.Place("a", 0x2000, 0x1000));
  ASSERT_FALSE(solver.Place("b", 0x2000, 0x1000).ok());
  solver.Release("a");
  // The failed attempt left no partial reservation behind: the freed arena
  // accepts the same request, at the same first-fit base "a" vacated.
  ASSERT_OK_AND_ASSIGN(Placement b, solver.Place("b", 0x2000, 0x1000));
  EXPECT_EQ(b.text_base, 0x100000u);
  EXPECT_EQ(solver.placed_count(), 1u);
}

TEST(Constraints, FreshPlacementsDoNotAdvanceGeneration) {
  ConstraintSolver solver;
  uint64_t start = solver.layout_generation();
  ASSERT_OK_AND_ASSIGN(Placement a, solver.Place("a", 0x1000, 0x1000));
  ASSERT_OK_AND_ASSIGN(Placement b, solver.Place("b", 0x1000, 0x1000));
  // New placements join the current layout; only a *move* of a live
  // placement invalidates prelink stamps.
  EXPECT_EQ(solver.layout_generation(), start);
  EXPECT_EQ(a.generation, start);
  EXPECT_EQ(b.generation, start);
  EXPECT_EQ(solver.GenerationOf("a"), start);
  EXPECT_EQ(solver.GenerationOf("missing"), 0u);
}

TEST(Constraints, RegrowAdvancesGeneration) {
  ConstraintSolver solver;
  uint64_t start = solver.layout_generation();
  ASSERT_OK(solver.Place("lib", 0x1000, 0x1000));
  ASSERT_OK_AND_ASSIGN(Placement big, solver.Place("lib", 0x40000, 0x1000));
  EXPECT_EQ(solver.layout_generation(), start + 1);
  EXPECT_EQ(big.generation, start + 1);
  EXPECT_EQ(solver.GenerationOf("lib"), start + 1);
}

TEST(Constraints, OptimizePlacementsDeterministicAcrossInsertionOrders) {
  // Two solvers see the same objects in different arrival orders (so their
  // initial first-fit layouts differ), then both run the administrative
  // re-pack. The result must depend only on the object set, never on
  // history: name-ordered first-fit from the arena base.
  ConstraintSolver forward;
  ConstraintSolver reverse;
  const std::vector<std::pair<std::string, uint32_t>> objects = {
      {"alpha", 0x3000}, {"beta", 0x1000}, {"gamma", 0x7000}, {"delta", 0x2000}};
  for (const auto& [name, size] : objects) {
    ASSERT_OK(forward.Place(name, size, 0x1000));
  }
  for (auto it = objects.rbegin(); it != objects.rend(); ++it) {
    ASSERT_OK(reverse.Place(it->first, it->second, 0x1000));
  }
  (void)forward.OptimizePlacements();
  (void)reverse.OptimizePlacements();
  std::vector<PlacementRecord> a = forward.ExportPlacements();
  std::vector<PlacementRecord> b = reverse.ExportPlacements();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].object, b[i].object);
    EXPECT_EQ(a[i].placement.text_base, b[i].placement.text_base) << a[i].object;
    EXPECT_EQ(a[i].placement.data_base, b[i].placement.data_base) << a[i].object;
  }
  // Running the pass again on an already-packed layout moves nothing.
  EXPECT_TRUE(forward.OptimizePlacements().empty());
}

TEST(Constraints, ConflictRecordsUnderHintCollisionSweep) {
  // Seeded sweep: every client hints the same text base. The first wins;
  // each later one spills and must record exactly what it wanted, what it
  // got, and who holds the contested range.
  ConstraintSolver solver;
  PlacementHints hints;
  hints.text_base = 0x02000000;
  constexpr int kClients = 8;
  std::vector<Placement> placed;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_OK_AND_ASSIGN(Placement p, solver.Place(StrCat("obj", i), 0x2000, 0x1000, hints));
    placed.push_back(p);
  }
  EXPECT_EQ(placed[0].text_base, 0x02000000u);
  ASSERT_EQ(solver.conflicts().size(), static_cast<size_t>(kClients - 1));
  for (int i = 1; i < kClients; ++i) {
    const ConflictRecord& record = solver.conflicts()[static_cast<size_t>(i - 1)];
    EXPECT_EQ(record.object, StrCat("obj", i));
    EXPECT_EQ(record.wanted, 0x02000000u);
    EXPECT_EQ(record.got, placed[static_cast<size_t>(i)].text_base);
    EXPECT_EQ(record.holder, "obj0");
    EXPECT_NE(record.got, record.wanted);
  }
  // Spills are first-fit from the arena base, so they ascend and never
  // collide with each other.
  for (int i = 2; i < kClients; ++i) {
    EXPECT_GT(placed[static_cast<size_t>(i)].text_base,
              placed[static_cast<size_t>(i - 1)].text_base);
  }
}

TEST(Constraints, SolveNamespaceMovesSpilledObjectToWantedBase) {
  ConstraintSolver solver;
  PlacementHints hints;
  hints.text_base = 0x02000000;
  ASSERT_OK(solver.Place("holder", 0x4000, 0x1000, hints));
  ASSERT_OK_AND_ASSIGN(Placement spilled, solver.Place("tenant", 0x4000, 0x1000, hints));
  ASSERT_EQ(solver.conflicts().size(), 1u);
  uint64_t before = solver.layout_generation();
  solver.Release("holder");
  std::vector<std::string> moved = solver.SolveNamespace();
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], "tenant");
  const Placement* home = solver.Find("tenant");
  ASSERT_NE(home, nullptr);
  EXPECT_EQ(home->text_base, 0x02000000u);
  EXPECT_NE(home->text_base, spilled.text_base);
  // The move advanced the layout generation and restamped the mover, so
  // prelink entries against the old layout read as stale.
  EXPECT_EQ(solver.layout_generation(), before + 1);
  EXPECT_EQ(solver.GenerationOf("tenant"), before + 1);
  EXPECT_TRUE(solver.conflicts().empty());
}

TEST(Constraints, SolveNamespaceIsNoopWithoutConflicts) {
  ConstraintSolver solver;
  ASSERT_OK(solver.Place("a", 0x1000, 0x1000));
  uint64_t before = solver.layout_generation();
  EXPECT_TRUE(solver.SolveNamespace().empty());
  EXPECT_EQ(solver.layout_generation(), before);
}

TEST(Constraints, SolveNamespaceRespillKeepsConflictForNextPass) {
  ConstraintSolver solver;
  PlacementHints hints;
  hints.text_base = 0x02000000;
  ASSERT_OK(solver.Place("holder", 0x4000, 0x1000, hints));
  ASSERT_OK_AND_ASSIGN(Placement spilled, solver.Place("tenant", 0x4000, 0x1000, hints));
  uint64_t before = solver.layout_generation();
  // Holder still owns the wanted range: the pass re-fits the tenant, which
  // lands back where it was, re-logs the conflict, and moves nothing — so
  // the generation (and every prelink stamp) stays valid.
  EXPECT_TRUE(solver.SolveNamespace().empty());
  EXPECT_EQ(solver.layout_generation(), before);
  const Placement* home = solver.Find("tenant");
  ASSERT_NE(home, nullptr);
  EXPECT_EQ(home->text_base, spilled.text_base);
  ASSERT_EQ(solver.conflicts().size(), 1u);
  EXPECT_EQ(solver.conflicts()[0].object, "tenant");
  EXPECT_EQ(solver.conflicts()[0].holder, "holder");
}

// ---- Image cache -----------------------------------------------------------------

CachedImage MakeImage(uint32_t bytes) {
  CachedImage image;
  image.image.text.resize(bytes);
  return image;
}

TEST(Cache, HitMissCounting) {
  ImageCache cache;
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", MakeImage(100));
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, PointerStableAcrossOtherInsertions) {
  ImageCache cache;
  const CachedImage* a = cache.Put("a", MakeImage(10));
  for (int i = 0; i < 100; ++i) {
    cache.Put(StrCat("x", i), MakeImage(10));
  }
  EXPECT_EQ(cache.Get("a"), a);
}

TEST(Cache, LruEvictionByBytes) {
  ImageCache cache(1000);
  cache.Put("a", MakeImage(400));
  cache.Put("b", MakeImage(400));
  EXPECT_NE(cache.Get("a"), nullptr);  // touch a; b becomes LRU
  cache.Put("c", MakeImage(400));      // exceeds budget -> evict b
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(Cache, ReplaceUpdatesBytes) {
  ImageCache cache;
  cache.Put("a", MakeImage(100));
  cache.Put("a", MakeImage(300));
  EXPECT_EQ(cache.stats().bytes_cached, 300u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(Cache, FullVerifyOncePerLifetimeThenAmortized) {
  ImageCache cache;
  cache.Put("a", MakeImage(64 << 10));  // 16 pages
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(cache.Get("a"), nullptr);
  }
  // Exactly one full walk (first Get after Put); later warm hits probe a
  // constant number of pages each.
  EXPECT_EQ(cache.stats().full_verifies, 1u);
  EXPECT_EQ(cache.stats().pages_verified, 16u + 9u * 2u);
}

TEST(Cache, AmortizedProbesCatchResidentCorruption) {
  ImageCache cache;
  const CachedImage* entry = cache.Put("a", MakeImage(16 << 10));  // 4 pages
  EXPECT_NE(cache.Get("a"), nullptr);  // full verify, marks entry warm
  // Corrupt a byte behind the cache's back. Round-robin probes must catch it
  // within ceil(pages / probes-per-get) further Gets.
  const_cast<CachedImage*>(entry)->image.text[9000] ^= 0x40;
  bool caught = false;
  for (int i = 0; i < 4 && !caught; ++i) {
    caught = cache.Get("a") == nullptr;
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(cache.stats().corruption_rebuilds, 1u);
  EXPECT_FALSE(cache.Contains("a"));
}

TEST(Cache, LayoutCorruptionCaughtOnNextGet) {
  ImageCache cache;
  const CachedImage* entry = cache.Put("a", MakeImage(16 << 10));
  EXPECT_NE(cache.Get("a"), nullptr);
  // Layout metadata is O(1)-sized, so every probe covers it: detection on
  // the very next Get, not after a round-robin cycle.
  const_cast<CachedImage*>(entry)->image.entry ^= 0x1000;
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.stats().corruption_rebuilds, 1u);
}

TEST(Cache, ArmedBitrotCaughtOnSameGet) {
  // While a bit-rot plan is armed, every Get pays a full verify, so the
  // corruption a trip injects is detected by the very Get that tripped it —
  // even on an already-warm entry.
  ImageCache cache;
  cache.Put("a", MakeImage(64 << 10));
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(cache.Get("a"), nullptr);  // warm it well past the full verify
  }
  ScopedFaultPlan plan(FaultPlan().Arm("cache.bitrot", FaultSpec::Nth(1)));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.stats().corruption_rebuilds, 1u);
}

// ---- Cache keys ---------------------------------------------------------------------

TEST(CacheKey, MakeAndSplitRoundTrip) {
  std::string key = MakeCacheKey("/lib/libc", "spec=lib-dynamic-impl");
  EXPECT_EQ(key, "/lib/libc\xc2\xa7spec=lib-dynamic-impl");
  std::string_view path;
  std::string_view spec;
  ASSERT_TRUE(SplitCacheKey(key, &path, &spec));
  EXPECT_EQ(path, "/lib/libc");
  EXPECT_EQ(spec, "spec=lib-dynamic-impl");
}

TEST(CacheKey, SplitAllowsEmptySpec) {
  std::string_view path;
  std::string_view spec;
  ASSERT_TRUE(SplitCacheKey(MakeCacheKey("/bin/ls", ""), &path, &spec));
  EXPECT_EQ(path, "/bin/ls");
  EXPECT_EQ(spec, "");
}

TEST(CacheKey, SplitRejectsPlainString) {
  std::string_view path = "unchanged";
  std::string_view spec = "unchanged";
  EXPECT_FALSE(SplitCacheKey("/bin/ls", &path, &spec));
  EXPECT_EQ(path, "unchanged");
  EXPECT_EQ(spec, "unchanged");
}

TEST(CacheKey, SplitWithNullOutputs) {
  std::string key = MakeCacheKey("/bin/ls", "x");
  std::string_view path;
  ASSERT_TRUE(SplitCacheKey(key, &path, nullptr));
  EXPECT_EQ(path, "/bin/ls");
  EXPECT_TRUE(SplitCacheKey(key, nullptr, nullptr));
}

// ---- Specialization keys -----------------------------------------------------------

TEST(Specialization, KeyStringRoundTrip) {
  Specialization spec;
  spec.name = "lib-constrained";
  spec.hints.text_base = 0x1000000;
  spec.hints.data_base = 0x40200000;
  Specialization parsed = Specialization::FromKeyString(spec.ToKeyString());
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.hints.text_base, spec.hints.text_base);
  EXPECT_EQ(parsed.hints.data_base, spec.hints.data_base);
}

TEST(Specialization, EmptyIsDefault) {
  Specialization parsed = Specialization::FromKeyString("");
  EXPECT_TRUE(parsed.name.empty());
  EXPECT_FALSE(parsed.hints.text_base.has_value());
}

}  // namespace
}  // namespace omos
