// Unit tests for SimISA encode/decode and the disassembler.
#include <gtest/gtest.h>

#include "src/isa/isa.h"
#include "tests/helpers.h"

namespace omos {
namespace {

// Every opcode round-trips through encode/decode.
class OpcodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity) {
  Instruction insn;
  insn.op = static_cast<Opcode>(GetParam());
  insn.r1 = 3;
  insn.r2 = 7;
  insn.r3 = 15;
  insn.imm = 0xCAFEBABE;
  uint8_t bytes[kInsnSize];
  EncodeInsn(insn, bytes);
  ASSERT_OK_AND_ASSIGN(Instruction decoded, DecodeInsn(bytes));
  EXPECT_EQ(decoded, insn);
}

TEST_P(OpcodeRoundTrip, NameRoundTrip) {
  Opcode op = static_cast<Opcode>(GetParam());
  std::string_view name = OpcodeName(op);
  ASSERT_NE(name, "?");
  ASSERT_OK_AND_ASSIGN(Opcode parsed, OpcodeFromName(name));
  EXPECT_EQ(parsed, op);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::Range(0, static_cast<int>(Opcode::kCount)));

// Exhaustive round-trip property: every legal (opcode, r1, r2, r3) tuple —
// with immediates probing every byte lane — encodes to 8 bytes that decode
// back to the identical instruction. 38 * 16^3 * 4 ≈ 623k cases; the
// decoded-block engine trusts this property to predecode text pages once.
TEST(Isa, ExhaustiveEncodeDecodeRoundTrip) {
  const uint32_t kImms[] = {0x00000000u, 0xFFFFFFFFu, 0x04030201u, 0x80000001u};
  uint8_t bytes[kInsnSize];
  for (int op = 0; op < static_cast<int>(Opcode::kCount); ++op) {
    for (int r1 = 0; r1 < kNumRegisters; ++r1) {
      for (int r2 = 0; r2 < kNumRegisters; ++r2) {
        for (int r3 = 0; r3 < kNumRegisters; ++r3) {
          Instruction insn{static_cast<Opcode>(op), static_cast<uint8_t>(r1),
                           static_cast<uint8_t>(r2), static_cast<uint8_t>(r3),
                           kImms[(r1 + r2 + r3) & 3]};
          EncodeInsn(insn, bytes);
          Result<Instruction> decoded = DecodeInsn(bytes);
          ASSERT_TRUE(decoded.ok()) << Disassemble(insn) << ": " << decoded.error().ToString();
          ASSERT_EQ(*decoded, insn) << Disassemble(insn);
        }
      }
    }
  }
}

// Rejection sweep, opcode byte: every value >= kCount must fail with the
// "illegal opcode" diagnostic and must never be misread as a legal opcode.
TEST(Isa, RejectsEveryIllegalOpcodeByte) {
  uint8_t bytes[kInsnSize] = {0, 1, 2, 3, 0xAA, 0xBB, 0xCC, 0xDD};
  for (int op = static_cast<int>(Opcode::kCount); op <= 0xFF; ++op) {
    bytes[0] = static_cast<uint8_t>(op);
    Result<Instruction> result = DecodeInsn(bytes);
    ASSERT_FALSE(result.ok()) << "opcode byte " << op;
    EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
    EXPECT_NE(result.error().message().find("illegal opcode"), std::string::npos);
  }
}

// Rejection sweep, register bytes: every out-of-range value in each of the
// three register positions must fail, independent of the opcode's shape
// (the decoder validates all three lanes even for register-less forms).
TEST(Isa, RejectsEveryBadRegisterByte) {
  for (int op = 0; op < static_cast<int>(Opcode::kCount); ++op) {
    for (int lane = 1; lane <= 3; ++lane) {
      for (int bad : {kNumRegisters, kNumRegisters + 1, 0x7F, 0xFF}) {
        uint8_t bytes[kInsnSize] = {static_cast<uint8_t>(op), 0, 0, 0, 0, 0, 0, 0};
        bytes[lane] = static_cast<uint8_t>(bad);
        Result<Instruction> result = DecodeInsn(bytes);
        ASSERT_FALSE(result.ok())
            << "opcode " << op << " lane " << lane << " value " << bad;
        EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
        EXPECT_NE(result.error().message().find("register index out of range"),
                  std::string::npos);
      }
    }
  }
}

TEST(Isa, RejectsIllegalOpcode) {
  uint8_t bytes[kInsnSize] = {255, 0, 0, 0, 0, 0, 0, 0};
  auto result = DecodeInsn(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
}

TEST(Isa, RejectsBadRegister) {
  uint8_t bytes[kInsnSize] = {static_cast<uint8_t>(Opcode::kMov), 16, 0, 0, 0, 0, 0, 0};
  auto result = DecodeInsn(bytes);
  ASSERT_FALSE(result.ok());
}

TEST(Isa, RejectsUnknownMnemonic) {
  auto result = OpcodeFromName("frobnicate");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
}

TEST(Isa, ImmediateIsLittleEndian) {
  Instruction insn;
  insn.op = Opcode::kMovI;
  insn.imm = 0x04030201;
  uint8_t bytes[kInsnSize];
  EncodeInsn(insn, bytes);
  EXPECT_EQ(bytes[4], 1);
  EXPECT_EQ(bytes[5], 2);
  EXPECT_EQ(bytes[6], 3);
  EXPECT_EQ(bytes[7], 4);
}

TEST(Disassembler, RepresentativeForms) {
  auto dis = [](Opcode op, uint8_t r1, uint8_t r2, uint8_t r3, uint32_t imm) {
    return Disassemble(Instruction{op, r1, r2, r3, imm});
  };
  EXPECT_EQ(dis(Opcode::kNop, 0, 0, 0, 0), "nop");
  EXPECT_EQ(dis(Opcode::kMovI, 1, 0, 0, 0x10), "movi r1, 0x00000010");
  EXPECT_EQ(dis(Opcode::kMov, 1, 2, 0, 0), "mov r1, r2");
  EXPECT_EQ(dis(Opcode::kAdd, 1, 2, 3, 0), "add r1, r2, r3");
  EXPECT_EQ(dis(Opcode::kLd, 0, 13, 0, 8), "ld r0, [r13+8]");
  EXPECT_EQ(dis(Opcode::kBeq, 1, 2, 0, static_cast<uint32_t>(-8)), "beq r1, r2, -8");
  EXPECT_EQ(dis(Opcode::kCall, 0, 0, 0, 0x1000), "call 0x00001000");
  EXPECT_EQ(dis(Opcode::kPush, 4, 0, 0, 0), "push r4");
  EXPECT_EQ(dis(Opcode::kRet, 0, 0, 0, 0), "ret");
  EXPECT_EQ(dis(Opcode::kAddI, 1, 1, 0, static_cast<uint32_t>(-4)), "addi r1, r1, -4");
}

}  // namespace
}  // namespace omos
