// Unit tests for SimISA encode/decode and the disassembler.
#include <gtest/gtest.h>

#include "src/isa/isa.h"
#include "tests/helpers.h"

namespace omos {
namespace {

// Every opcode round-trips through encode/decode.
class OpcodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity) {
  Instruction insn;
  insn.op = static_cast<Opcode>(GetParam());
  insn.r1 = 3;
  insn.r2 = 7;
  insn.r3 = 15;
  insn.imm = 0xCAFEBABE;
  uint8_t bytes[kInsnSize];
  EncodeInsn(insn, bytes);
  ASSERT_OK_AND_ASSIGN(Instruction decoded, DecodeInsn(bytes));
  EXPECT_EQ(decoded, insn);
}

TEST_P(OpcodeRoundTrip, NameRoundTrip) {
  Opcode op = static_cast<Opcode>(GetParam());
  std::string_view name = OpcodeName(op);
  ASSERT_NE(name, "?");
  ASSERT_OK_AND_ASSIGN(Opcode parsed, OpcodeFromName(name));
  EXPECT_EQ(parsed, op);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::Range(0, static_cast<int>(Opcode::kCount)));

TEST(Isa, RejectsIllegalOpcode) {
  uint8_t bytes[kInsnSize] = {255, 0, 0, 0, 0, 0, 0, 0};
  auto result = DecodeInsn(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
}

TEST(Isa, RejectsBadRegister) {
  uint8_t bytes[kInsnSize] = {static_cast<uint8_t>(Opcode::kMov), 16, 0, 0, 0, 0, 0, 0};
  auto result = DecodeInsn(bytes);
  ASSERT_FALSE(result.ok());
}

TEST(Isa, RejectsUnknownMnemonic) {
  auto result = OpcodeFromName("frobnicate");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
}

TEST(Isa, ImmediateIsLittleEndian) {
  Instruction insn;
  insn.op = Opcode::kMovI;
  insn.imm = 0x04030201;
  uint8_t bytes[kInsnSize];
  EncodeInsn(insn, bytes);
  EXPECT_EQ(bytes[4], 1);
  EXPECT_EQ(bytes[5], 2);
  EXPECT_EQ(bytes[6], 3);
  EXPECT_EQ(bytes[7], 4);
}

TEST(Disassembler, RepresentativeForms) {
  auto dis = [](Opcode op, uint8_t r1, uint8_t r2, uint8_t r3, uint32_t imm) {
    return Disassemble(Instruction{op, r1, r2, r3, imm});
  };
  EXPECT_EQ(dis(Opcode::kNop, 0, 0, 0, 0), "nop");
  EXPECT_EQ(dis(Opcode::kMovI, 1, 0, 0, 0x10), "movi r1, 0x00000010");
  EXPECT_EQ(dis(Opcode::kMov, 1, 2, 0, 0), "mov r1, r2");
  EXPECT_EQ(dis(Opcode::kAdd, 1, 2, 3, 0), "add r1, r2, r3");
  EXPECT_EQ(dis(Opcode::kLd, 0, 13, 0, 8), "ld r0, [r13+8]");
  EXPECT_EQ(dis(Opcode::kBeq, 1, 2, 0, static_cast<uint32_t>(-8)), "beq r1, r2, -8");
  EXPECT_EQ(dis(Opcode::kCall, 0, 0, 0, 0x1000), "call 0x00001000");
  EXPECT_EQ(dis(Opcode::kPush, 4, 0, 0, 0), "push r4");
  EXPECT_EQ(dis(Opcode::kRet, 0, 0, 0, 0), "ret");
  EXPECT_EQ(dis(Opcode::kAddI, 1, 1, 0, static_cast<uint32_t>(-4)), "addi r1, r1, -4");
}

}  // namespace
}  // namespace omos
