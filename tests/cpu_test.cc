// Interpreter semantics: one parameterized sweep over ALU operations
// checked against a host-computed reference, plus control-flow, memory and
// fault cases.
#include <gtest/gtest.h>

#include "src/support/strings.h"
#include "tests/helpers.h"

namespace omos {
namespace {

struct AluCase {
  const char* mnemonic;
  int32_t lhs;
  int32_t rhs;
  int32_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, MatchesReference) {
  const AluCase& c = GetParam();
  Kernel kernel;
  std::string source = StrCat(".text\n.global _start\n_start:\n  movi r1, ", c.lhs,
                              "\n  movi r2, ", c.rhs, "\n  ", c.mnemonic,
                              " r0, r1, r2\n  sys 0\n");
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, source));
  EXPECT_EQ(out.exit_code, c.expected) << c.mnemonic << " " << c.lhs << ", " << c.rhs;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluSemantics,
    ::testing::Values(AluCase{"add", 2, 3, 5}, AluCase{"add", -2, 3, 1},
                      AluCase{"add", 0x7FFFFFFF, 1, INT32_MIN},  // wraparound
                      AluCase{"sub", 3, 5, -2}, AluCase{"sub", -3, -5, 2},
                      AluCase{"mul", 7, 6, 42}, AluCase{"mul", -4, 3, -12},
                      AluCase{"div", 42, 5, 8}, AluCase{"div", -42, 5, -8},
                      AluCase{"mod", 42, 5, 2}, AluCase{"mod", -7, 3, -1},
                      AluCase{"and", 12, 10, 8}, AluCase{"or", 12, 10, 14},
                      AluCase{"xor", 12, 10, 6}, AluCase{"shl", 1, 5, 32},
                      AluCase{"shl", 1, 37, 32},  // shift count masked to 5 bits
                      AluCase{"shr", 64, 3, 8}));

struct BranchCase {
  const char* mnemonic;
  int32_t lhs;
  int32_t rhs;
  bool taken;
};

class BranchSemantics : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchSemantics, TakenAndNotTaken) {
  const BranchCase& c = GetParam();
  Kernel kernel;
  std::string source = StrCat(".text\n.global _start\n_start:\n  movi r1, ", c.lhs,
                              "\n  movi r2, ", c.rhs, "\n  ", c.mnemonic,
                              " r1, r2, taken\n  movi r0, 0\n  sys 0\ntaken:\n  movi r0, 1\n"
                              "  sys 0\n");
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, source));
  EXPECT_EQ(out.exit_code, c.taken ? 1 : 0)
      << c.mnemonic << " " << c.lhs << ", " << c.rhs;
}

INSTANTIATE_TEST_SUITE_P(
    Branches, BranchSemantics,
    ::testing::Values(BranchCase{"beq", 5, 5, true}, BranchCase{"beq", 5, 6, false},
                      BranchCase{"bne", 5, 6, true}, BranchCase{"bne", 5, 5, false},
                      BranchCase{"blt", -1, 0, true}, BranchCase{"blt", 0, -1, false},
                      BranchCase{"bge", 3, 3, true}, BranchCase{"bge", 2, 3, false},
                      // Unsigned: -1 is UINT32_MAX.
                      BranchCase{"bltu", 0, -1, true}, BranchCase{"bltu", -1, 0, false},
                      BranchCase{"bgeu", -1, 0, true}, BranchCase{"bgeu", 0, -1, false}));

TEST(Cpu, DivideByZeroFaults) {
  Kernel kernel;
  auto result = AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r1, 1
  movi r2, 0
  div r0, r1, r2
  sys 0
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kExecFault);
  EXPECT_NE(result.error().message().find("divide by zero"), std::string::npos);
}

TEST(Cpu, ModByZeroFaults) {
  Kernel kernel;
  auto result = AssembleAndRun(kernel,
                               ".text\n.global _start\n_start:\n  movi r1, 1\n  movi r2, 0\n"
                               "  mod r0, r1, r2\n  sys 0\n");
  ASSERT_FALSE(result.ok());
}

TEST(Cpu, PcRelativeAddressing) {
  Kernel kernel;
  // leapc and ldpc against a data word via pcrel relocation.
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  ldpc r0, value      ; r0 = *value
  leapc r1, value     ; r1 = &value
  ld r2, [r1+0]
  sub r0, r0, r2      ; should be 0
  sys 0
.data
.align 4
value: .word 1234
)"));
  EXPECT_EQ(out.exit_code, 0);
}

TEST(Cpu, IndirectCallAndJump) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  lea r1, target
  callr r1
  addi r0, r0, 1
  lea r1, finish
  jmpr r1
  movi r0, 99        ; skipped
finish:
  sys 0
target:
  movi r0, 10
  ret
)"));
  EXPECT_EQ(out.exit_code, 11);
}

TEST(Cpu, NestedCallsPreserveDiscipline) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out, AssembleAndRun(kernel, R"(
.text
.global _start
_start:
  movi r0, 0
  call a
  sys 0
a:
  push lr
  addi r0, r0, 1
  call b
  addi r0, r0, 16
  pop lr
  ret
b:
  push lr
  addi r0, r0, 2
  call c
  addi r0, r0, 32
  pop lr
  ret
c:
  addi r0, r0, 4
  ret
)"));
  EXPECT_EQ(out.exit_code, 1 + 2 + 4 + 16 + 32);
}

TEST(Cpu, HaltExitsCleanly) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(RunOutcome out,
                       AssembleAndRun(kernel, ".text\n.global _start\n_start:\n  halt\n"));
  EXPECT_EQ(out.exit_code, 0);
}

TEST(Cpu, TouchedTextPagesTracked) {
  Kernel kernel;
  ASSERT_OK_AND_ASSIGN(ObjectFile object, Assemble(R"(
.text
.global _start
_start:
  call far
  sys 0
.space 8192
far:
  movi r0, 0
  ret
)", "far.o"));
  Module m = Module::FromObject(std::make_shared<const ObjectFile>(std::move(object)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  ASSERT_OK_AND_ASSIGN(LinkedImage image, LinkImage(m, layout, "far"));
  Task& task = kernel.CreateTask("far");
  ASSERT_OK(MapLinkedImage(kernel, task, image, ""));
  ASSERT_OK(StartTask(kernel, task, image.entry, {}));
  ASSERT_OK(kernel.RunTask(task));
  EXPECT_GE(task.touched_text_pages(), 2u);  // entry page + far page
}

}  // namespace
}  // namespace omos
