// Concurrency tests for the multi-threaded OMOS server (PR 3): parallel
// warm hits, single-flight miss deduplication, sharded-cache lifetime under
// eviction, redefinition and snapshot under load, parallel-relocation
// determinism, the idle-time background optimizer, and fault-sim counter
// exactness. Everything uses fixed thread counts and iteration counts so
// failures reproduce.
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cache.h"
#include "src/core/server.h"
#include "src/ipc/message.h"
#include "src/support/faultsim.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "tests/helpers.h"

namespace omos {
namespace {

constexpr int kThreads = 8;

// Start `n` threads, release them through a spin barrier so they contend
// for real, and join them all.
void RunThreads(int n, const std::function<void(int)>& fn) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      fn(i);
    });
  }
  while (ready.load(std::memory_order_relaxed) < n) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) {
    t.join();
  }
}

constexpr char kAddLib[] = R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

constexpr char kCrt0[] = R"(
.text
.global _start
_start:
  call main
  sys 0
)";

constexpr char kClient[] = R"(
.text
.global main
main:
  push lr
  movi r0, 5
  call add2
  call mul3
  pop lr
  ret
)";

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OmosServer>(kernel_);
    ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(kCrt0, "crt0.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(kAddLib, "addlib.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile client, Assemble(kClient, "client.o"));
    ASSERT_OK(server_->AddFragment("/lib/crt0.o", std::move(crt0)));
    ASSERT_OK(server_->AddFragment("/obj/addlib.o", std::move(lib)));
    ASSERT_OK(server_->AddFragment("/obj/client.o", std::move(client)));
  }

  Result<RunOutcome> RunTaskById(TaskId id) {
    Task* task = kernel_.FindTask(id);
    if (task == nullptr) {
      return Err(ErrorCode::kNotFound, "no task");
    }
    OMOS_TRY_VOID(kernel_.RunTask(*task));
    RunOutcome out;
    out.exit_code = task->exit_code();
    out.output = task->output();
    return out;
  }

  Kernel kernel_;
  std::unique_ptr<OmosServer> server_;
};

TEST_F(ConcurrencyTest, WarmHitsScaleAcrossThreads) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  ASSERT_OK(server_->Instantiate("/bin/prog", {}, nullptr));  // warm the cache
  uint64_t inserts_before = server_->cache_stats().inserts.load();

  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  RunThreads(kThreads, [&](int) {
    for (int i = 0; i < kIters; ++i) {
      ImageCache::ReadLease lease(server_->cache());
      auto image = server_->Instantiate("/bin/prog", {}, nullptr);
      if (!image.ok() || (*image)->image.entry == 0u) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->cache_stats().hits.load(),
            static_cast<uint64_t>(kThreads) * kIters);
  // Warm hits never rebuild: no new insertions.
  EXPECT_EQ(server_->cache_stats().inserts.load(), inserts_before);
}

TEST_F(ConcurrencyTest, SingleFlightColdMissBuildsExactlyOnce) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  std::atomic<int> failures{0};
  RunThreads(kThreads, [&](int) {
    ImageCache::ReadLease lease(server_->cache());
    auto image = server_->Instantiate("/bin/prog", {}, nullptr);
    if (!image.ok()) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  // All eight concurrent misses resolve to one build: exactly one insert.
  EXPECT_EQ(server_->cache_stats().inserts.load(), 1u);
}

TEST_F(ConcurrencyTest, DistinctKeysBuildIndependently) {
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_OK(server_->DefineMeta(StrCat("/bin/prog", i),
                                  "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  }
  std::atomic<int> failures{0};
  RunThreads(kThreads, [&](int i) {
    ImageCache::ReadLease lease(server_->cache());
    auto image = server_->Instantiate(StrCat("/bin/prog", i), {}, nullptr);
    if (!image.ok()) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->cache_stats().inserts.load(), static_cast<uint64_t>(kThreads));
}

TEST_F(ConcurrencyTest, RedefinitionUnderLoad) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ImageCache::ReadLease lease(server_->cache());
        auto image = server_->Instantiate("/bin/prog", {}, nullptr);
        if (!image.ok() || (*image)->image.entry == 0u) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Redefine the program (same two valid blueprints back and forth) while
  // the readers instantiate it. Every reader must see one or the other.
  for (int round = 0; round < 25; ++round) {
    const char* blueprint = (round % 2 == 0)
                                ? "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"
                                : "(merge /lib/crt0.o /obj/addlib.o /obj/client.o)";
    ASSERT_OK(server_->DefineMeta("/bin/prog", blueprint));
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ASSERT_OK_AND_ASSIGN(const CachedImage* last, server_->Instantiate("/bin/prog", {}, nullptr));
  EXPECT_NE(last->image.entry, 0u);
}

TEST_F(ConcurrencyTest, SnapshotWhileServing) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  ASSERT_OK(server_->Instantiate("/bin/prog", {}, nullptr));
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ImageCache::ReadLease lease(server_->cache());
        if (!server_->Instantiate("/bin/prog", {}, nullptr).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::string snapshot;
  for (int i = 0; i < 10; ++i) {
    snapshot = server_->Snapshot();
    EXPECT_FALSE(snapshot.empty());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // The snapshot taken under load restores into a working server.
  Kernel fresh_kernel;
  OmosServer restored(fresh_kernel);
  ASSERT_OK(restored.Restore(snapshot));
  ASSERT_OK_AND_ASSIGN(TaskId id, restored.IntegratedExec("/bin/prog", {"prog"}));
  Task* task = fresh_kernel.FindTask(id);
  ASSERT_NE(task, nullptr);
  ASSERT_OK(fresh_kernel.RunTask(*task));
  EXPECT_EQ(task->exit_code(), 21);
}

TEST_F(ConcurrencyTest, ParallelRelocationIsDeterministic) {
  // Two servers over two kernels build the same meta-object with the global
  // thread pool active; the parallel link fan-out must produce the same
  // bytes (disjoint fragment spans + ordered reduce).
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  ASSERT_OK_AND_ASSIGN(const CachedImage* first, server_->Instantiate("/bin/prog", {}, nullptr));
  std::vector<uint8_t> text = first->image.text;
  std::vector<uint8_t> data = first->image.data;
  uint32_t entry = first->image.entry;

  for (int round = 0; round < 4; ++round) {
    Kernel other_kernel;
    OmosServer other(other_kernel);
    ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(kCrt0, "crt0.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(kAddLib, "addlib.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile client, Assemble(kClient, "client.o"));
    ASSERT_OK(other.AddFragment("/lib/crt0.o", std::move(crt0)));
    ASSERT_OK(other.AddFragment("/obj/addlib.o", std::move(lib)));
    ASSERT_OK(other.AddFragment("/obj/client.o", std::move(client)));
    ASSERT_OK(other.DefineMeta("/bin/prog",
                               "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
    ASSERT_OK_AND_ASSIGN(const CachedImage* image, other.Instantiate("/bin/prog", {}, nullptr));
    EXPECT_EQ(image->image.text, text);
    EXPECT_EQ(image->image.data, data);
    EXPECT_EQ(image->image.entry, entry);
  }
}

TEST_F(ConcurrencyTest, BackgroundOptimizerSwapsInReorderedImage) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  // Gather a call-frequency profile the way the paper does (§4.1): run a
  // monitored instance, then derive the preferred routine order.
  Specialization monitor{"monitor", {}};
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/prog", {"prog"}, monitor));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);
  ASSERT_OK(server_->DerivePreferredOrder("/bin/prog"));

  server_->EnableBackgroundOptimizer(/*hot_threshold=*/3);
  ASSERT_OK(server_->Instantiate("/bin/prog", {}, nullptr));  // cold build
  for (int i = 0; i < 3; ++i) {                               // warm hits -> hot
    ASSERT_OK(server_->Instantiate("/bin/prog", {}, nullptr));
  }
  server_->DrainBackgroundWork();  // idle time: the optimizer re-links

  // The next instantiation is transparently served by the reordered image.
  ImageCache::ReadLease lease(server_->cache());
  ASSERT_OK_AND_ASSIGN(const CachedImage* after, server_->Instantiate("/bin/prog", {}, nullptr));
  EXPECT_NE(after->key.find("reorder"), std::string::npos)
      << "expected the optimizer to alias the hot image to its reordered "
         "re-link, got key " << after->key;
  EXPECT_NE(after->image.entry, 0u);
}

TEST_F(ConcurrencyTest, ReadLeaseKeepsEvictedEntryAlive) {
  ImageCache cache(1 << 20);
  CachedImage ci;
  ci.key = "a";
  ci.image.name = "a";
  ci.image.text.assign(8192, 0xAB);
  {
    ImageCache::ReadLease lease(cache);
    const CachedImage* pinned = cache.Put("a", std::move(ci));
    ASSERT_NE(pinned, nullptr);
    cache.Evict("a");
    EXPECT_FALSE(cache.Contains("a"));
    // The pointer must stay dereferenceable until the lease closes.
    EXPECT_EQ(pinned->image.text.size(), 8192u);
    EXPECT_EQ(pinned->image.text[0], 0xAB);
  }
  EXPECT_EQ(cache.stats().evictions.load(), 1u);
}

TEST_F(ConcurrencyTest, CacheHammerMixedOperations) {
  ImageCache cache(64 << 10);  // small budget: constant eviction pressure
  auto make_image = [](const std::string& key) {
    CachedImage ci;
    ci.key = key;
    ci.image.name = key;
    ci.image.text.assign(4096, static_cast<uint8_t>(key.back()));
    return ci;
  };
  std::atomic<int> failures{0};
  RunThreads(kThreads, [&](int t) {
    for (int i = 0; i < 300; ++i) {
      std::string key = StrCat("img", (t * 7 + i) % 24);
      ImageCache::ReadLease lease(cache);
      const CachedImage* got = cache.Get(key);
      if (got == nullptr) {
        got = cache.Put(key, make_image(key));
      }
      if (got == nullptr || got->image.text.size() != 4096) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      if (i % 37 == 0) {
        cache.Evict(key);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
  // The global byte budget held under concurrent insertion.
  EXPECT_LE(cache.stats().bytes_cached.load(), 64u << 10);
}

TEST_F(ConcurrencyTest, FaultSimTotalsExactUnderConcurrentTrips) {
  FaultPlan plan;
  plan.Arm("test.site", FaultSpec::Every(1));
  ScopedFaultPlan scoped(std::move(plan));
  constexpr int kTrips = 1000;
  RunThreads(kThreads, [&](int) {
    for (int i = 0; i < kTrips; ++i) {
      FaultSim::Trip("test.site");
    }
  });
  // Which thread observes a given fire is scheduling-dependent, but the
  // totals are exact (see the SimState comment in faultsim.cc).
  EXPECT_EQ(FaultSim::Hits("test.site"), static_cast<uint64_t>(kThreads) * kTrips);
  EXPECT_EQ(FaultSim::TotalFires(), static_cast<uint64_t>(kThreads) * kTrips);
}

// CoW exec under threads (PR 5): all tasks map the same cached data master
// and every one of them writes it, so the interpreter threads race to break
// the very same master frames (atomic refcounts in PhysMemory) while their
// stacks demand-fill concurrently. Exit codes prove per-task isolation;
// frame accounting proves the concurrent breaks leaked nothing.
TEST_F(ConcurrencyTest, ConcurrentCowBreaksOnSharedImage) {
  constexpr char kCounter[] = R"(
.text
.global main
main:
  lea r1, counter
  ld r0, [r1+0]
  addi r0, r0, 1
  st r0, [r1+0]      ; CoW break on the shared master data frame
  lea r2, scratch
  st r0, [r2+0]      ; demand-zero fill in bss
  ld r0, [r1+0]
  ret
.data
.align 4
counter: .word 7
.bss
scratch: .space 64
)";
  ASSERT_OK_AND_ASSIGN(ObjectFile counter, Assemble(kCounter, "counter.o"));
  ASSERT_OK(server_->AddFragment("/obj/counter.o", std::move(counter)));
  ASSERT_OK(server_->DefineMeta("/bin/count", "(merge /lib/crt0.o /obj/counter.o)"));

  // Warm the cache so every round below maps the same master image.
  ASSERT_OK_AND_ASSIGN(TaskId warm, server_->IntegratedExec("/bin/count", {"count"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome w, RunTaskById(warm));
  ASSERT_EQ(w.exit_code, 8);
  server_->ReleaseTask(warm);
  kernel_.DestroyTask(warm);
  uint32_t baseline = kernel_.phys().frames_in_use();

  constexpr int kRounds = 6;
  std::atomic<int> failures{0};
  for (int round = 0; round < kRounds; ++round) {
    // Exec on the main thread (server-side mapping), run on worker threads
    // (interpreter faults race on the shared frames), destroy on the main
    // thread again.
    std::vector<TaskId> ids;
    for (int i = 0; i < kThreads; ++i) {
      ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/count", {"count"}));
      ids.push_back(id);
    }
    RunThreads(kThreads, [&](int i) {
      Task* task = kernel_.FindTask(ids[i]);
      if (task == nullptr || !kernel_.RunTask(*task).ok() || task->exit_code() != 8) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (TaskId id : ids) {
      server_->ReleaseTask(id);
      kernel_.DestroyTask(id);
    }
  }
  EXPECT_EQ(failures.load(), 0);
  // Every privatized frame went back to the pool.
  EXPECT_EQ(kernel_.phys().frames_in_use(), baseline);
}

TEST_F(ConcurrencyTest, ServeAsyncAnswersOnPoolThread) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  constexpr int kRequests = 16;
  std::atomic<int> done{0};
  std::atomic<int> failures{0};
  for (int i = 0; i < kRequests; ++i) {
    OmosRequest request;
    request.op = OmosOp::kListNamespace;
    request.path = "/bin";
    server_->ServeAsync(EncodeRequest(request), [&](std::vector<uint8_t> bytes) {
      auto reply = DecodeReply(bytes);
      if (!reply.ok() || !reply->ok || reply->names.empty()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  ThreadPool::Global().WaitIdle();
  EXPECT_EQ(done.load(std::memory_order_acquire), kRequests);
  EXPECT_EQ(failures.load(), 0);
}

// Live upgrade under exec load (PR 9): worker threads run lib-dynamic
// clients through the upgrade window while the main thread links, repoints
// and reclaims. Safepoint frame transfers happen on the worker threads
// (the interpreter loop calls the server's safepoint hook there), racing
// DrainUpgrade on the main thread. Every client must exit on a consistent
// version: 21 (pure v1) or 51 (pure v2) — anything else means a torn
// migration.
TEST_F(ConcurrencyTest, ConcurrentUpgradeAndExec) {
  constexpr char kAddLibV2[] = R"(
.text
.global add2
add2:
  addi r0, r0, 12
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";
  ASSERT_OK_AND_ASSIGN(ObjectFile v2, Assemble(kAddLibV2, "addlib2.o"));
  ASSERT_OK(server_->AddFragment("/obj/addlib2.o", std::move(v2)));
  ASSERT_OK(server_->DefineLibrary("/lib/addlib", "(merge /obj/addlib.o)"));
  ASSERT_OK(server_->DefineMeta("/bin/dynprog",
                                "(merge /lib/crt0.o /obj/client.o"
                                " (specialize \"lib-dynamic\" /lib/addlib))"));

  constexpr int kRounds = 6;
  std::atomic<int> bad{0};
  for (int round = 0; round < kRounds; ++round) {
    // Exec on the main thread (server-side mapping), run on worker threads.
    std::vector<TaskId> ids;
    for (int i = 0; i < kThreads; ++i) {
      ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/dynprog", {"prog"}));
      ids.push_back(id);
    }
    if (round == 1) {
      ASSERT_OK(server_->BeginUpgrade("/lib/addlib", "(merge /obj/addlib2.o)"));
    }
    std::atomic<int> finished{0};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&, i] {
        Task* task = kernel_.FindTask(ids[i]);
        if (task == nullptr || !kernel_.RunTask(*task).ok() ||
            (task->exit_code() != 21 && task->exit_code() != 51)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
        finished.fetch_add(1, std::memory_order_release);
      });
    }
    // Drive the upgrade from this thread while the workers run through
    // their safepoints — the contention under test.
    while (finished.load(std::memory_order_acquire) < kThreads) {
      server_->DrainUpgrade();
      std::this_thread::yield();
    }
    for (std::thread& t : workers) {
      t.join();
    }
    for (TaskId id : ids) {
      server_->ReleaseTask(id);
      kernel_.DestroyTask(id);
    }
  }
  EXPECT_EQ(bad.load(), 0);

  OmosServer::UpgradeStatus status = server_->DrainUpgrade();
  for (int i = 0; i < 64 && !status.terminal(); ++i) {
    status = server_->DrainUpgrade();
  }
  EXPECT_EQ(status.phase, UpgradePhase::kDone) << status.error;
  // Steady state: fresh execs run pure v2.
  ASSERT_OK_AND_ASSIGN(TaskId fresh, server_->IntegratedExec("/bin/dynprog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(fresh));
  EXPECT_EQ(out.exit_code, 51);
}

}  // namespace
}  // namespace omos
